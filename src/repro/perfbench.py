"""Event-tier performance harness — the repo's perf measuring stick.

Two scenario families, each probing a different layer:

* ``kernel`` — pure DES timer churn: N self-rescheduling callbacks on a
  bare :class:`~repro.sim.core.Simulator`.  The event count is identical
  on every build (the workload *is* the events), so ``events_per_sec``
  ratios measure raw kernel throughput with nothing else moving.
* ``oddci`` — the full wakeup+heartbeat+bag-of-tasks cycle on the
  faithful per-node event tier at 10^3 / 10^4 / 10^5 PNAs.  Batching
  optimisations legitimately *remove* events here, so compare
  ``wall_s`` (and semantic outputs: ``makespan`` must be bit-identical
  across builds) rather than raw events/sec.

Recorded per run: ``events`` / ``events_per_sec``, ``peak_heap``
(maximum calendar size, sampled), ``build_wall_s`` / ``run_wall_s``,
and ``makespan`` / ``sim_time`` so before/after runs can be compared
for equivalence, not just speed.

Measurement policy: the garbage collector is disabled for the timed
section (the ``timeit`` convention) and restored afterwards; wall
numbers are only comparable when before/after runs interleave in fresh
processes on an otherwise idle machine — single runs on shared hosts
carry ±10% noise.

Results are written as JSON (``BENCH_event_tier.json`` at the repo root
is the tracked artifact; see DESIGN.md §8).  Regenerate with::

    python -m repro bench                # or: make bench
    python -m repro bench --scales 1000 10000 --label after
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import time
from typing import Dict, List, Optional

from repro.net.message import MEGABYTE

__all__ = [
    "SCENARIO",
    "DEFAULT_SCALES",
    "KERNEL_SCALES",
    "CENSUS_SCALES",
    "DISPATCH_SCALES",
    "run_scenario",
    "run_kernel_scenario",
    "run_telemetry_overhead",
    "run_census_scenario",
    "run_dispatch_scenario",
    "run_federation_scenario",
    "run_serve_scenario",
    "run_vector_scenario",
    "run_scales",
    "write_report",
    "main",
]

DEFAULT_SCALES = (1_000, 10_000, 100_000)
KERNEL_SCALES = (10_000,)
CENSUS_SCALES = (100_000,)
DISPATCH_SCALES = (50_000,)
FEDERATION_SCALES = (100_000,)
SERVE_SCALES = (32,)
VECTOR_SCALES = (100_000, 1_000_000, 10_000_000)

#: Scenario constants — change these and old JSON is incomparable.
SCENARIO = {
    "tasks_per_node": 4,
    "ref_seconds": 5.0,
    "input_bits": 4096.0,
    "result_bits": 4096.0,
    "image_bits": float(MEGABYTE),  # 1 MB staged image
    "heartbeat_interval_s": 10.0,
    "maintenance_interval_s": 60.0,
    "dve_poll_interval_s": 15.0,
    "seed": 1,
    "kernel_tick_s": 1.0,
    "kernel_horizon_s": 30.0,
    "gc": "disabled during measured section",
}


class _gc_paused:
    """Disable collection for the timed section; restore on exit."""

    def __enter__(self):
        self._was_enabled = gc.isenabled()
        gc.disable()
        return self

    def __exit__(self, *exc):
        if self._was_enabled:
            gc.enable()
        return False


def run_scenario(n_nodes: int, *, seed: Optional[int] = None,
                 sample_interval_s: float = 5.0,
                 task_path: Optional[str] = None) -> Dict[str, float]:
    """One wakeup+heartbeat+BoT cycle at ``n_nodes`` PNAs; returns metrics.

    ``task_path`` selects the dispatch tier ("cohort" macro engine vs
    "process" per-PNA reference; None → REPRO_TASK_PATH / default).
    ``makespan`` must be bit-identical across paths — wall time is the
    only legitimate difference.
    """
    from repro.core import OddCISystem
    from repro.core.taskloop import resolve_task_path
    from repro.workloads import uniform_bag

    cfg = SCENARIO
    task_path = resolve_task_path(task_path)
    with _gc_paused():
        t0 = time.perf_counter()
        system = OddCISystem(
            seed=cfg["seed"] if seed is None else seed,
            maintenance_interval_s=cfg["maintenance_interval_s"],
            task_path=task_path)
        system.add_pnas(n_nodes,
                        heartbeat_interval_s=cfg["heartbeat_interval_s"],
                        dve_poll_interval_s=cfg["dve_poll_interval_s"])
        build_wall_s = time.perf_counter() - t0

        sim = system.sim
        peak = {"heap": 0}

        def sample() -> None:
            heap_len = len(sim._heap)
            if heap_len > peak["heap"]:
                peak["heap"] = heap_len
            sim.schedule(sample_interval_s, sample)

        sim.schedule(0.0, sample)

        job = uniform_bag(n_nodes * cfg["tasks_per_node"],
                          image_bits=cfg["image_bits"],
                          input_bits=cfg["input_bits"],
                          ref_seconds=cfg["ref_seconds"],
                          result_bits=cfg["result_bits"])
        t1 = time.perf_counter()
        submission = system.provider.submit_job(
            job, target_size=n_nodes,
            heartbeat_interval_s=cfg["heartbeat_interval_s"])
        report = system.provider.run_job_to_completion(submission, limit_s=1e7)
        run_wall_s = time.perf_counter() - t1

    events = sim.events_executed
    return {
        "n_nodes": n_nodes,
        "task_path": task_path,
        "events": events,
        "events_per_sec": events / run_wall_s if run_wall_s > 0 else 0.0,
        "peak_heap": peak["heap"],
        "build_wall_s": round(build_wall_s, 4),
        "run_wall_s": round(run_wall_s, 4),
        "wall_s": round(build_wall_s + run_wall_s, 4),
        "makespan": report.makespan,
        "sim_time": sim.now,
        "n_tasks": report.n_tasks,
        "distinct_workers": report.distinct_workers,
    }


def run_kernel_scenario(n_timers: int, *,
                        horizon_s: Optional[float] = None
                        ) -> Dict[str, float]:
    """Raw kernel churn: ``n_timers`` self-rescheduling callbacks.

    Every build executes the *same* number of events (timers fire once
    per tick until the horizon), so the events/sec ratio between two
    builds is a clean kernel-speed comparison.  A small per-timer phase
    stagger keeps the calendar from degenerating into one giant
    same-time bucket.
    """
    from repro.sim.core import Simulator

    tick = SCENARIO["kernel_tick_s"]
    horizon = SCENARIO["kernel_horizon_s"] if horizon_s is None else horizon_s
    sim = Simulator(seed=1)
    # Feature-detect the fast path so the same harness can measure
    # builds that predate Simulator.schedule_fast.
    schedule = getattr(sim, "schedule_fast", None) or sim.schedule

    def timer(i: int) -> None:
        schedule(tick, timer, i)

    for i in range(n_timers):
        schedule(tick + (i % 97) * 1e-6, timer, i)
    with _gc_paused():
        t0 = time.perf_counter()
        sim.run(until=horizon)
        wall_s = time.perf_counter() - t0
    events = sim.events_executed
    return {
        "n_timers": n_timers,
        "horizon_s": horizon,
        "events": events,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 4),
    }


def run_telemetry_overhead(n_timers: int = 10_000, *,
                           repeats: int = 3) -> Dict[str, float]:
    """Disabled-telemetry overhead on the kernel microbench.

    Interleaves ``repeats`` pairs of kernel runs — plain vs. with a
    tracer installed whose ``kernel`` category is *disabled* (the
    production shape of a ``--trace`` run: components resolve a ``None``
    channel and pay one truthiness check per call site) — and compares
    best-of-N events/sec.  ``ratio`` is traced/plain; the guard in
    ``benchmarks/test_telemetry_overhead.py`` requires >= 0.97
    (<= ~3% overhead).  Interleaving and best-of-N squeeze out most
    scheduler noise; single pairs on a shared host are still ±5%.
    """
    from repro.telemetry.trace import Tracer, active

    plain_best = traced_best = 0.0
    for _ in range(max(1, repeats)):
        plain = run_kernel_scenario(n_timers)
        plain_best = max(plain_best, plain["events_per_sec"])
        with active(Tracer("runner")):  # kernel category disabled
            traced = run_kernel_scenario(n_timers)
        traced_best = max(traced_best, traced["events_per_sec"])
    return {
        "n_timers": n_timers,
        "repeats": repeats,
        "plain_events_per_sec": round(plain_best, 1),
        "traced_events_per_sec": round(traced_best, 1),
        "ratio": round(traced_best / plain_best, 4) if plain_best else 0.0,
    }


def _census_controller(backend: str):
    """A bare Controller (no PNA fleet) on the chosen census engine.

    Heartbeat payloads are injected directly at the consolidation entry
    points, so the measurement isolates the census data path — no link
    math, no kernel traffic.  Reset replies no-op identically on both
    engines (no registered PNA channels)."""
    from repro.core.controller import Controller, DirectControlPlane
    from repro.core.instance import reset_instance_sequence
    from repro.core.network import Router
    from repro.net.broadcast import BroadcastChannel
    from repro.net.crypto import KeyRegistry
    from repro.sim.core import Simulator

    reset_instance_sequence()
    sim = Simulator(seed=SCENARIO["seed"])
    router = Router(sim)
    plane = DirectControlPlane(
        BroadcastChannel(sim, beta_bps=1e9, name="bench.bcast"))
    controller = Controller(
        sim, router, plane, KeyRegistry(),
        maintenance_interval_s=SCENARIO["maintenance_interval_s"],
        census_backend=backend)
    return router, controller


def run_census_scenario(n_members: int, *, rounds: int = 5,
                        repeats: int = 3) -> Dict[str, float]:
    """Heartbeat-consolidation throughput: columnar vs per-payload.

    One cohort of ``n_members`` heartbeats (90% busy members of a live
    instance, 10% idle — the steady-state shape of a healthy fleet) is
    consolidated ``rounds`` times per engine: the dict-backed reference
    through ``_receive_batch`` (the payload-by-payload baseline) and the
    columnar store through ``_receive_cohort``.  Runs interleave and the
    best of ``repeats`` is kept.  ``speedup`` is the tracked number; the
    engines' final censuses are asserted equal before returning.
    """
    from repro.core.instance import InstanceSpec
    from repro.core.messages import HeartbeatPayload, PNAState

    spec = InstanceSpec(
        target_size=max(1, (n_members * 9) // 10), image_name="bench-img",
        image_bits=SCENARIO["image_bits"],
        heartbeat_interval_s=SCENARIO["heartbeat_interval_s"])

    def build(backend):
        router, controller = _census_controller(backend)
        iid = controller.create_instance(spec).instance_id
        payloads, idxs = [], []
        for i in range(n_members):
            pna_id = f"pna-{i}"
            if i % 10 == 0:
                payload = HeartbeatPayload(pna_id=pna_id,
                                           state=PNAState.IDLE,
                                           instance_id=None)
            else:
                payload = HeartbeatPayload(pna_id=pna_id,
                                           state=PNAState.BUSY,
                                           instance_id=iid)
            payloads.append(payload)
            idxs.append(router.interner.intern(pna_id))
        return controller, payloads, idxs

    baseline, base_payloads, _ = build("dict")
    columnar, col_payloads, col_idxs = build("columnar")

    base_best = col_best = float("inf")
    with _gc_paused():
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            for _r in range(rounds):
                baseline._receive_batch(base_payloads)
            base_best = min(base_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            for _r in range(rounds):
                columnar._receive_cohort(col_payloads, col_idxs)
            col_best = min(col_best, time.perf_counter() - t0)

    # Equivalence: both engines must have consolidated the same census.
    iid = next(iter(baseline.instances))
    assert len(baseline.registry) == len(columnar.registry) == n_members
    assert baseline.instances[iid].size == columnar.instances[iid].size
    assert baseline.idle_estimate() == columnar.idle_estimate()
    assert sorted(baseline.registry.items()) == \
        sorted(columnar.registry.items())

    consolidations = n_members * rounds
    base_cps = consolidations / base_best if base_best > 0 else 0.0
    col_cps = consolidations / col_best if col_best > 0 else 0.0
    return {
        "n_members": n_members,
        "rounds": rounds,
        "repeats": repeats,
        "baseline_wall_s": round(base_best, 4),
        "columnar_wall_s": round(col_best, 4),
        "baseline_consolidations_per_sec": round(base_cps, 1),
        "columnar_consolidations_per_sec": round(col_cps, 1),
        "speedup": round(col_cps / base_cps, 3) if base_cps else 0.0,
        "instance_size": baseline.instances[iid].size,
        "idle_estimate": baseline.idle_estimate(),
    }


def run_dispatch_scenario(n_requesters: int, *, rounds: int = 5,
                          repeats: int = 3) -> Dict[str, float]:
    """Backend dispatch-tier throughput: batched vs per-request.

    ``n_requesters`` concurrent task requests are served ``rounds``
    times from a bag deep enough that the pending queue never empties —
    once through the scalar ``_serve_request`` loop (what the per-PNA
    reference path produces) and once through one
    ``receive_request_cohort`` call per round (the cohort wire shape).
    Runs interleave; best of ``repeats`` per engine is kept.  The
    assigned task-id sequences are asserted identical before returning,
    so ``speedup`` never trades away dispatch order.
    """
    from repro.core.backend import Backend
    from repro.core.network import Router
    from repro.sim.core import Simulator
    from repro.workloads import uniform_bag
    from repro.workloads.job import reset_job_sequence

    requesters = [f"pna-{i}" for i in range(n_requesters)]

    def build():
        reset_job_sequence()
        sim = Simulator(seed=SCENARIO["seed"])
        job = uniform_bag(n_requesters * rounds,
                          ref_seconds=SCENARIO["ref_seconds"])
        return Backend(sim, job, Router(sim), backend_id="bench-dispatch")

    base_best = coh_best = float("inf")
    base_ids = coh_ids = None
    with _gc_paused():
        for _ in range(max(1, repeats)):
            backend = build()
            t0 = time.perf_counter()
            ids = [backend._serve_request(r, "i-bench").task_id
                   for _r in range(rounds) for r in requesters]
            base_best = min(base_best, time.perf_counter() - t0)
            backend.shutdown()
            base_ids = ids

            backend = build()
            t0 = time.perf_counter()
            ids = [reply.task_id for _r in range(rounds) for reply in
                   backend.receive_request_cohort(requesters, "i-bench")]
            coh_best = min(coh_best, time.perf_counter() - t0)
            backend.shutdown()
            coh_ids = ids

    assert base_ids == coh_ids, "dispatch order diverged across tiers"
    assignments = n_requesters * rounds
    base_aps = assignments / base_best if base_best > 0 else 0.0
    coh_aps = assignments / coh_best if coh_best > 0 else 0.0
    return {
        "n_requesters": n_requesters,
        "rounds": rounds,
        "repeats": repeats,
        "baseline_wall_s": round(base_best, 4),
        "cohort_wall_s": round(coh_best, 4),
        "baseline_assignments_per_sec": round(base_aps, 1),
        "cohort_assignments_per_sec": round(coh_aps, 1),
        "speedup": round(coh_aps / base_aps, 3) if base_aps else 0.0,
    }


def run_federation_scenario(n_nodes: int, *, n_networks: int = 3,
                            seed: Optional[int] = None,
                            sample_interval_s: float = 5.0,
                            task_path: Optional[str] = None
                            ) -> Dict[str, float]:
    """One full federated cycle: ``n_nodes`` PNAs across ``n_networks``.

    The federated analogue of :func:`run_scenario` — three controller
    shards over one shared interner, spread placement at full capacity,
    one Backend routing the bag over every shard's fabric.  Records the
    same wall/heap/makespan metrics plus the per-network completion
    split, and asserts the merged accounting matches the bag before
    returning (a fast federation that loses tasks cannot score).
    """
    from repro.core.federation import FederatedOddCISystem, NetworkDescriptor
    from repro.core.instance import reset_instance_sequence
    from repro.core.taskloop import resolve_task_path
    from repro.workloads import uniform_bag

    cfg = SCENARIO
    task_path = resolve_task_path(task_path)
    reset_instance_sequence()
    base, extra = divmod(n_nodes, n_networks)
    descriptors = [
        NetworkDescriptor(name=f"net{i}",
                          capacity=base + (1 if i < extra else 0),
                          cost_per_node_hour=0.5 + 0.5 * i)
        for i in range(n_networks)]
    with _gc_paused():
        t0 = time.perf_counter()
        system = FederatedOddCISystem(
            descriptors, seed=cfg["seed"] if seed is None else seed,
            placement="spread",
            maintenance_interval_s=cfg["maintenance_interval_s"],
            task_path=task_path)
        system.build_fleets(
            heartbeat_interval_s=cfg["heartbeat_interval_s"],
            dve_poll_interval_s=cfg["dve_poll_interval_s"])
        build_wall_s = time.perf_counter() - t0

        sim = system.sim
        peak = {"heap": 0}

        def sample() -> None:
            heap_len = len(sim._heap)
            if heap_len > peak["heap"]:
                peak["heap"] = heap_len
            sim.schedule(sample_interval_s, sample)

        sim.schedule(0.0, sample)

        job = uniform_bag(n_nodes * cfg["tasks_per_node"],
                          image_bits=cfg["image_bits"],
                          input_bits=cfg["input_bits"],
                          ref_seconds=cfg["ref_seconds"],
                          result_bits=cfg["result_bits"])
        t1 = time.perf_counter()
        submission = system.provider.submit_job(
            job, target_size=n_nodes,
            heartbeat_interval_s=cfg["heartbeat_interval_s"])
        report = system.provider.run_job_to_completion(
            submission, limit_s=1e7)
        run_wall_s = time.perf_counter() - t1

    backend = submission.backend
    completed_by_network = dict(backend.completed_by_network)
    assert sum(completed_by_network.values()) == report.n_tasks, \
        "per-network completion accounting diverged from the bag"
    events = sim.events_executed
    return {
        "n_nodes": n_nodes,
        "n_networks": n_networks,
        "task_path": task_path,
        "events": events,
        "events_per_sec": events / run_wall_s if run_wall_s > 0 else 0.0,
        "peak_heap": peak["heap"],
        "build_wall_s": round(build_wall_s, 4),
        "run_wall_s": round(run_wall_s, 4),
        "wall_s": round(build_wall_s + run_wall_s, 4),
        "makespan": report.makespan,
        "sim_time": sim.now,
        "n_tasks": report.n_tasks,
        "distinct_workers": report.distinct_workers,
        "completed_by_network": completed_by_network,
    }


def run_serve_scenario(n_pnas: int, *, offered_rps: Optional[float] = None,
                       warm_target: int = 2,
                       horizon_s: float = 600.0,
                       seed: Optional[int] = None) -> Dict[str, float]:
    """Warm-pool benefit on the request tier: cold vs warm, same load.

    Runs the full service pipeline (open-loop Poisson traffic → gateway
    → pool → Provider) twice at the same offered load — once with the
    warm pool disabled, once at ``warm_target`` — and records the p50 /
    p99 time-to-ready of both, the warm run's pool hit ratio and the
    ``p99_improvement`` ratio (cold p99 over warm p99), the number the
    floor guard in ``benchmarks/test_serve_floor.py`` tracks.  Both
    runs must settle every issued request (``lost == 0``) or the
    scenario refuses to score — a fast tier that strands requests is
    not a result.
    """
    from repro.core import OddCISystem
    from repro.core.instance import reset_instance_sequence
    from repro.serve import (
        GatewayConfig,
        PoolConfig,
        ServiceTier,
        TrafficSpec,
    )

    cfg = SCENARIO
    # Default load sits just below the fleet's knee (per Little's law
    # ~n/4 concurrent instances against ~(ttr + hold) residence), so
    # the cold run strains visibly while the warm run still clears —
    # the regime where standby capacity matters most.
    rate = offered_rps if offered_rps is not None else 0.00125 * n_pnas

    def run_once(warm: int):
        reset_instance_sequence()
        with _gc_paused():
            t0 = time.perf_counter()
            system = OddCISystem(
                seed=cfg["seed"] if seed is None else seed,
                maintenance_interval_s=15.0)
            system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                            dve_poll_interval_s=cfg["dve_poll_interval_s"])
            traffic = TrafficSpec(
                pattern="poisson", rate_rps=rate, horizon_s=horizon_s,
                n_tenants=4, target_size=4, hold_s_mean=60.0)
            tier = ServiceTier(
                system, traffic,
                gateway=GatewayConfig(max_concurrent=6),
                pool=PoolConfig(warm_target=warm, standby_size=4,
                                refill_interval_s=20.0),
                heartbeat_interval_s=10.0)
            summary = tier.run()
            wall_s = time.perf_counter() - t0
        return summary, wall_s, system.sim.events_executed

    cold, cold_wall, cold_events = run_once(0)
    warm, warm_wall, warm_events = run_once(warm_target)
    assert cold["lost"] == 0 and warm["lost"] == 0, \
        "service tier stranded requests; timings are meaningless"
    warm_p99 = warm["ttr_p99_s"]
    return {
        "n_pnas": n_pnas,
        "offered_rps": rate,
        "horizon_s": horizon_s,
        "warm_target": warm_target,
        "issued": cold["issued"],
        "cold_ttr_p50_s": cold["ttr_p50_s"],
        "cold_ttr_p99_s": cold["ttr_p99_s"],
        "warm_ttr_p50_s": warm["ttr_p50_s"],
        "warm_ttr_p99_s": warm_p99,
        # Denominator floored at 1 s so an all-warm run (p99 = 0.0)
        # stays finite/JSON-plain; the guard only needs a lower bound.
        "p99_improvement": round(
            cold["ttr_p99_s"] / max(warm_p99, 1.0), 3),
        "cold_rejection_rate": cold["rejection_rate"],
        "warm_rejection_rate": warm["rejection_rate"],
        "pool_hit_ratio": warm["pool"]["hit_ratio"],
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "wall_s": round(cold_wall + warm_wall, 4),
        "events": cold_events + warm_events,
    }


def run_vector_scenario(n_nodes: int, *, storm_magnitude: float = 0.3,
                        seed: Optional[int] = None) -> Dict[str, float]:
    """Vector-tier system throughput at ``n_nodes`` receivers.

    Two sequential submissions against a persistent population (the
    ``vector_scale`` scenario's shape): job 1 rides through a churn
    storm (``storm_magnitude`` of the fleet for 200 s), job 2 runs
    clean on the same clock.  The scored figure is ``nodes_per_sec`` —
    recruited nodes fully simulated (wakeup sampling, fault masks,
    census epochs, availability integration) per second of host wall
    time — which the floor guard in ``benchmarks/test_vector_floor.py``
    tracks.  The job is a constant-space :class:`~repro.workloads.bot.
    BagSpec` so a 10⁷-node point does not materialise 10⁸ Task objects.
    """
    from repro.experiments.vector_scale import storm_plan
    from repro.vector.system import VectorOddCISystem
    from repro.workloads.bot import uniform_bag_spec

    cfg = SCENARIO
    with _gc_paused():
        t0 = time.perf_counter()
        system = VectorOddCISystem(
            int(n_nodes * 1.25) + 10,
            seed=cfg["seed"] if seed is None else seed,
            plan=storm_plan(storm_magnitude))
        job = uniform_bag_spec(
            n_nodes * cfg["tasks_per_node"],
            image_bits=8 * MEGABYTE, ref_seconds=30.0,
            input_bits=cfg["input_bits"], result_bits=cfg["result_bits"])
        build_wall_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        r1 = system.run_job(job, target_size=n_nodes)
        r2 = system.run_job(job, target_size=n_nodes)
        run_wall_s = time.perf_counter() - t0
    recruited = r1.recruited + r2.recruited
    return {
        "nodes": n_nodes,
        "recruited": recruited,
        "storm_magnitude": storm_magnitude,
        "makespan_1": round(r1.makespan_s, 3),
        "makespan_2": round(r2.makespan_s, 3),
        "availability_1": round(r1.availability, 4),
        "availability_2": round(r2.availability, 4),
        "efficiency_1": round(r1.efficiency, 4),
        "sim_time": round(system.now, 3),
        "build_wall_s": round(build_wall_s, 4),
        "run_wall_s": round(run_wall_s, 4),
        "wall_s": round(build_wall_s + run_wall_s, 4),
        "nodes_per_sec": round(recruited / run_wall_s, 1),
    }


def run_scales(scales: List[int],
               kernel_scales: Optional[List[int]] = None,
               *, verbose: bool = True,
               task_path: Optional[str] = None) -> Dict[str, dict]:
    """Run both families; returns ``{"oddci": {...}, "kernel": {...}}``."""
    oddci: Dict[str, dict] = {}
    for n in scales:
        metrics = run_scenario(int(n), task_path=task_path)
        oddci[str(n)] = metrics
        if verbose:
            print(f"  oddci  n={n:>7}  events={metrics['events']:>10}  "
                  f"{metrics['events_per_sec']:>10.0f} ev/s  "
                  f"peak_heap={metrics['peak_heap']:>8}  "
                  f"wall={metrics['wall_s']:.2f}s  "
                  f"makespan={metrics['makespan']:.3f}")
    kernel: Dict[str, dict] = {}
    for n in (KERNEL_SCALES if kernel_scales is None else kernel_scales):
        metrics = run_kernel_scenario(int(n))
        kernel[str(n)] = metrics
        if verbose:
            print(f"  kernel n={n:>7}  events={metrics['events']:>10}  "
                  f"{metrics['events_per_sec']:>10.0f} ev/s  "
                  f"wall={metrics['wall_s']:.2f}s")
    return {"oddci": oddci, "kernel": kernel}


def write_report(path: str, results: Dict[str, dict],
                 label: str, merge_into: Optional[str] = None,
                 *, benchmark: str = "event_tier") -> dict:
    """Write ``results`` under key ``label`` ("before"/"after").

    ``merge_into`` — path of an existing report whose other labels are
    preserved (so an "after" run keeps the recorded "before" numbers).
    """
    doc = {
        "benchmark": benchmark,
        "scenario": dict(SCENARIO),
        "python": platform.python_version(),
    }
    if merge_into:
        try:
            with open(merge_into) as fh:
                old = json.load(fh)
            for key in ("before", "after", "notes"):
                if key in old:
                    doc[key] = old[key]
        except (OSError, ValueError):
            pass
    doc[label] = results
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Event-tier perf scenarios (see DESIGN.md §8)")
    parser.add_argument("--scales", type=int, nargs="+",
                        default=list(DEFAULT_SCALES),
                        help="oddci-family fleet sizes")
    parser.add_argument("--kernel-scales", type=int, nargs="+",
                        default=list(KERNEL_SCALES),
                        help="kernel-family timer counts")
    parser.add_argument("--out", type=str, default="BENCH_event_tier.json")
    parser.add_argument("--label", type=str, default="after",
                        choices=("before", "after"))
    parser.add_argument("--task-path", type=str, default=None,
                        choices=("cohort", "process"),
                        help="dispatch tier for the oddci family "
                             "(default: REPRO_TASK_PATH or cohort)")
    parser.add_argument("--profile", type=int, nargs="?", const=25,
                        default=0, metavar="N",
                        help="run under cProfile and print the top N "
                             "functions by cumulative time (default 25)")
    parser.add_argument("--telemetry-overhead", action="store_true",
                        help="measure disabled-telemetry kernel overhead "
                             "instead of the scenario families")
    parser.add_argument("--census", action="store_true",
                        help="measure census consolidation throughput "
                             "(columnar vs per-payload) instead of the "
                             "scenario families")
    parser.add_argument("--census-scales", type=int, nargs="+",
                        default=list(CENSUS_SCALES),
                        help="census-family member counts")
    parser.add_argument("--dispatch", action="store_true",
                        help="measure Backend dispatch-tier throughput "
                             "(batched cohort vs per-request) instead of "
                             "the scenario families")
    parser.add_argument("--dispatch-scales", type=int, nargs="+",
                        default=list(DISPATCH_SCALES),
                        help="dispatch-family requester counts")
    parser.add_argument("--federation", action="store_true",
                        help="measure the federated control plane "
                             "(multi-network cycle) instead of the "
                             "scenario families")
    parser.add_argument("--federation-scales", type=int, nargs="+",
                        default=list(FEDERATION_SCALES),
                        help="federation-family total fleet sizes")
    parser.add_argument("--serve", action="store_true",
                        help="measure the request-tier warm-pool benefit "
                             "(cold vs warm time-to-ready) instead of the "
                             "scenario families")
    parser.add_argument("--serve-scales", type=int, nargs="+",
                        default=list(SERVE_SCALES),
                        help="serve-family fleet sizes (PNAs)")
    parser.add_argument("--vector", action="store_true",
                        help="measure the vector-tier system (persistent "
                             "population, faults, census) instead of the "
                             "scenario families")
    parser.add_argument("--vector-scales", type=int, nargs="+",
                        default=list(VECTOR_SCALES),
                        help="vector-family fleet sizes (receivers)")
    args = parser.parse_args(argv)
    if args.vector:
        out = args.out if args.out != "BENCH_event_tier.json" \
            else "BENCH_vector.json"
        vector: Dict[str, dict] = {}
        for n in args.vector_scales:
            metrics = _maybe_profiled(args.profile, run_vector_scenario,
                                      int(n))
            vector[str(n)] = metrics
            print(f"  vector n={n:>9}  "
                  f"{metrics['nodes_per_sec']:>12.0f} nodes/s  "
                  f"wall={metrics['wall_s']:.2f}s  "
                  f"avail#1={metrics['availability_1']:.3f}  "
                  f"makespan#1={metrics['makespan_1']:.0f}s")
        if args.profile:
            print(f"[profiled run: {out} left untouched]")
        else:
            write_report(out, {"vector": vector}, args.label,
                         merge_into=out, benchmark="vector")
            print(f"[written to {out}]")
        return 0
    if args.serve:
        out = args.out if args.out != "BENCH_event_tier.json" \
            else "BENCH_serve.json"
        serve: Dict[str, dict] = {}
        for n in args.serve_scales:
            metrics = _maybe_profiled(args.profile, run_serve_scenario,
                                      int(n))
            serve[str(n)] = metrics
            print(f"  serve n={n:>5}  "
                  f"cold p99 {metrics['cold_ttr_p99_s']:>7.2f}s  "
                  f"warm p99 {metrics['warm_ttr_p99_s']:>7.2f}s  "
                  f"improvement {metrics['p99_improvement']:.2f}x  "
                  f"hit {metrics['pool_hit_ratio']:.2f}  "
                  f"wall={metrics['wall_s']:.2f}s")
        if args.profile:
            print(f"[profiled run: {out} left untouched]")
        else:
            write_report(out, {"serve": serve}, args.label,
                         merge_into=out, benchmark="serve")
            print(f"[written to {out}]")
        return 0
    if args.federation:
        out = args.out if args.out != "BENCH_event_tier.json" \
            else "BENCH_federation.json"
        federation: Dict[str, dict] = {}
        for n in args.federation_scales:
            metrics = _maybe_profiled(args.profile, run_federation_scenario,
                                      int(n), task_path=args.task_path)
            federation[str(n)] = metrics
            print(f"  federation n={n:>7}  "
                  f"events={metrics['events']:>10}  "
                  f"{metrics['events_per_sec']:>10.0f} ev/s  "
                  f"wall={metrics['wall_s']:.2f}s  "
                  f"makespan={metrics['makespan']:.3f}  "
                  f"nets={metrics['n_networks']}")
        if args.profile:
            print(f"[profiled run: {out} left untouched]")
        else:
            write_report(out, {"federation": federation}, args.label,
                         merge_into=out, benchmark="federation")
            print(f"[written to {out}]")
        return 0
    if args.dispatch:
        out = args.out if args.out != "BENCH_event_tier.json" \
            else "BENCH_dispatch.json"
        dispatch: Dict[str, dict] = {}
        for n in args.dispatch_scales:
            metrics = _maybe_profiled(args.profile, run_dispatch_scenario,
                                      int(n))
            dispatch[str(n)] = metrics
            print(f"  dispatch n={n:>7}  "
                  f"scalar {metrics['baseline_assignments_per_sec']:>12.0f}/s  "
                  f"cohort {metrics['cohort_assignments_per_sec']:>12.0f}/s  "
                  f"speedup {metrics['speedup']:.2f}x")
        if args.profile:
            print(f"[profiled run: {out} left untouched]")
        else:
            write_report(out, {"dispatch": dispatch}, args.label,
                         merge_into=out, benchmark="dispatch")
            print(f"[written to {out}]")
        return 0
    if args.census:
        out = args.out if args.out != "BENCH_event_tier.json" \
            else "BENCH_census.json"
        census: Dict[str, dict] = {}
        for n in args.census_scales:
            metrics = run_census_scenario(int(n))
            census[str(n)] = metrics
            print(f"  census n={n:>7}  "
                  f"baseline {metrics['baseline_consolidations_per_sec']:>12.0f}/s  "
                  f"columnar {metrics['columnar_consolidations_per_sec']:>12.0f}/s  "
                  f"speedup {metrics['speedup']:.2f}x")
        write_report(out, {"census": census}, args.label,
                     merge_into=out, benchmark="census")
        print(f"[written to {out}]")
        return 0
    if args.telemetry_overhead:
        metrics = run_telemetry_overhead(int(args.kernel_scales[0]))
        print(f"telemetry overhead (kernel n={metrics['n_timers']}): "
              f"plain {metrics['plain_events_per_sec']:.0f} ev/s, "
              f"traced(disabled) {metrics['traced_events_per_sec']:.0f} "
              f"ev/s, ratio {metrics['ratio']:.4f}")
        return 0
    print(f"event-tier perf bench — oddci {args.scales}, "
          f"kernel {args.kernel_scales} ({args.label}, "
          f"task_path={args.task_path or 'default'})")
    results = _maybe_profiled(args.profile, run_scales, args.scales,
                              args.kernel_scales,
                              task_path=args.task_path)
    if args.profile:
        print(f"[profiled run: {args.out} left untouched]")
    else:
        write_report(args.out, results, args.label, merge_into=args.out)
        print(f"[written to {args.out}]")
    return 0


def _maybe_profiled(top_n: int, fn, *args, **kwargs):
    """Run ``fn`` under cProfile when ``top_n`` > 0, printing the top-N
    rows by cumulative time; otherwise call it directly.

    Profiler overhead inflates wall numbers 2-4x — profiled runs are
    for finding hot spots, never for recording in BENCH artifacts.
    """
    if not top_n:
        return fn(*args, **kwargs)
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args, **kwargs)
    print(f"\n-- cProfile top {top_n} (cumulative) "
          "— wall numbers are inflated; do not record --")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(top_n)
    return result


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
