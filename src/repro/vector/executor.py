"""Vectorised bag-of-tasks execution for very large node counts.

The event tier simulates every message; that is faithful but caps out
around 10⁴ nodes.  For the paper's scalability claims (requirement I:
"hundreds of millions of processing resources") we compute the *same*
pull-scheduling outcome with array math:

* :func:`makespan_waterfill` — homogeneous tasks: binary-search the
  finish time T such that the fleet's aggregate task capacity by T
  reaches ``n``; exact greedy list-scheduling result in O(N · log)
  vectorised passes.
* :func:`makespan_heap` — general case (heterogeneous tasks and/or
  nodes): classic event-free greedy list scheduling with a heap,
  O(n log N).

Both include the per-task direct-channel I/O time, matching the event
tier's DVE loop (request → input transfer → compute → result transfer).
Tests cross-validate the two against each other and against the event
tier on overlapping sizes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = ["ExecutionOutcome", "makespan_waterfill", "makespan_heap",
           "makespan_under_outages", "per_task_wall_seconds"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """Result of a vectorised execution.

    ``finish_time`` is when the last result lands (absolute, same
    origin as the ready times); ``tasks_per_node_max`` characterises the
    load imbalance.
    """

    finish_time: float
    n_tasks: int
    n_nodes: int
    tasks_per_node_max: int

    def makespan(self, submit_time: float = 0.0) -> float:
        return self.finish_time - submit_time


def per_task_wall_seconds(
    ref_seconds: float,
    io_bits: float,
    delta_bps: float,
    device_factor: float = 1.0,
) -> float:
    """Wall time one node spends per task: I/O at δ plus scaled compute."""
    if ref_seconds <= 0:
        raise AnalysisError("ref_seconds must be > 0")
    if io_bits < 0 or delta_bps <= 0:
        raise AnalysisError("bad I/O parameters")
    if device_factor <= 0:
        raise AnalysisError("device_factor must be > 0")
    return io_bits / delta_bps + ref_seconds * device_factor


def makespan_waterfill(
    ready_times: np.ndarray,
    n_tasks: int,
    task_wall_seconds: float,
) -> ExecutionOutcome:
    """Exact greedy-pull finish time for identical tasks.

    Each node starts pulling at its ready time and executes tasks back
    to back, each taking ``task_wall_seconds``.  Greedy pull (always the
    earliest-free node takes the next task) finishes the bag at the
    smallest T with ``sum_i floor((T - ready_i)^+ / d) >= n``; we then
    snap T to an exact task-completion instant.
    """
    ready = np.asarray(ready_times, dtype=float)
    if ready.ndim != 1 or ready.size == 0:
        raise AnalysisError("ready_times must be a non-empty 1-D array")
    if n_tasks <= 0:
        raise AnalysisError(f"n_tasks must be > 0, got {n_tasks}")
    if task_wall_seconds <= 0:
        raise AnalysisError("task_wall_seconds must be > 0")

    d = float(task_wall_seconds)

    def capacity(t: float) -> int:
        return int(np.floor(np.maximum(t - ready, 0.0) / d).sum())

    eps = min(1e-9, d * 1e-6)
    lo = float(ready.min()) + d
    hi = float(ready.min()) + d * float(n_tasks)  # one node does it all
    if capacity(hi) < n_tasks:  # numeric safety
        hi = float(ready.max()) + d * float(n_tasks)
    for _ in range(200):
        if hi - lo <= max(eps, 1e-12 * hi):
            break
        mid = 0.5 * (lo + hi)
        if capacity(mid) >= n_tasks:
            hi = mid
        else:
            lo = mid
    # Snap to the exact completion instant: with finish bound hi, each
    # node i contributes k_i = floor((hi - ready_i)^+ / d) tasks; greedy
    # pull performs exactly the n earliest completions, so drop the
    # surplus from the latest finishers (at most one per node — ties at
    # the boundary instant).
    k = np.floor(np.maximum(hi - ready, 0.0) / d + eps).astype(np.int64)
    total = int(k.sum())
    if total < n_tasks:
        raise AnalysisError("waterfill failed to converge")  # pragma: no cover
    surplus = total - n_tasks
    if surplus > 0:
        finish_candidates = ready + k * d
        active_idx = np.nonzero(k > 0)[0]
        order = active_idx[np.argsort(finish_candidates[active_idx],
                                      kind="stable")]
        if surplus > order.size:  # pragma: no cover - eps pathologies
            raise AnalysisError("waterfill surplus exceeds active nodes")
        k[order[-surplus:]] -= 1
    active = k > 0
    finish = float((ready[active] + k[active] * d).max())
    return ExecutionOutcome(
        finish_time=finish,
        n_tasks=int(n_tasks),
        n_nodes=int(ready.size),
        tasks_per_node_max=int(k.max()),
    )


def makespan_under_outages(
    ready_times: np.ndarray,
    n_tasks: int,
    task_wall_seconds,
    outages: Sequence = (),
) -> ExecutionOutcome:
    """Greedy-pull finish time with heterogeneous nodes and downtime.

    Generalises :func:`makespan_waterfill` along two axes at once:

    * ``task_wall_seconds`` may be a scalar (homogeneous fleet) or a
      per-node array aligned with ``ready_times``;
    * ``outages`` is a sequence of ``(start, end, mask)`` triples — a
      victim (``mask`` is a boolean array over nodes, or ``None`` for
      everyone) contributes no capacity while ``start <= t < end``.

    Node *i*'s active time by T is ``(T - ready_i)^+`` minus the summed
    overlap of its outage windows with ``[ready_i, T)``; capacity is
    ``sum_i floor(active_i / d_i)`` and the finish time is found by
    binary search, snapped to within one task duration of the exact
    greedy completion (adequate at vector scale, and exact — via
    :func:`makespan_waterfill` — in the homogeneous fault-free case).
    Overlapping windows hitting the same node sum their downtime, a
    conservative (never optimistic) capacity estimate.
    """
    ready = np.asarray(ready_times, dtype=float)
    if ready.ndim != 1 or ready.size == 0:
        raise AnalysisError("ready_times must be a non-empty 1-D array")
    if n_tasks <= 0:
        raise AnalysisError(f"n_tasks must be > 0, got {n_tasks}")
    scalar_d = np.isscalar(task_wall_seconds) or (
        np.asarray(task_wall_seconds).ndim == 0)
    if scalar_d:
        if float(task_wall_seconds) <= 0:
            raise AnalysisError("task_wall_seconds must be > 0")
        if not outages:
            return makespan_waterfill(ready, n_tasks,
                                      float(task_wall_seconds))
        d_i = np.full(ready.size, float(task_wall_seconds))
    else:
        d_i = np.asarray(task_wall_seconds, dtype=float)
        if d_i.shape != ready.shape:
            raise AnalysisError(
                "per-node task_wall_seconds must align with ready_times")
        if np.any(d_i <= 0):
            raise AnalysisError("task durations must be > 0")

    windows = []
    for start, end, mask in outages:
        if end <= start:
            raise AnalysisError(
                f"outage window must have end > start, got [{start}, {end})")
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != ready.shape:
                raise AnalysisError(
                    "outage mask must align with ready_times")
            if not mask.any():
                continue
        windows.append((float(start), float(end), mask))

    def active_time(t: float) -> np.ndarray:
        active = np.maximum(t - ready, 0.0)
        for start, end, mask in windows:
            overlap = np.minimum(t, end) - np.maximum(ready, start)
            np.maximum(overlap, 0.0, out=overlap)
            if mask is not None:
                overlap *= mask
            active -= overlap
        np.maximum(active, 0.0, out=active)
        return active

    def capacity(t: float) -> int:
        return int(np.floor(active_time(t) / d_i).sum())

    d_max = float(d_i.max())
    # One node doing the whole bag plus sitting out every (finite)
    # window bounds the finish from above; permanent windows contribute
    # through the mask (a fully masked-forever fleet cannot finish).
    horizon_pad = sum(end - start for start, end, _m in windows
                      if end < float("inf"))
    lo = float(ready.min())
    hi = lo + d_max * float(n_tasks) + horizon_pad
    for _ in range(64):  # numeric safety for pathological overlaps
        if capacity(hi) >= n_tasks:
            break
        hi = lo + 2.0 * (hi - lo)
    else:
        raise AnalysisError(
            "outage schedule leaves insufficient capacity to finish")
    for _ in range(200):
        if hi - lo <= max(1e-9, 1e-12 * hi):
            break
        mid = 0.5 * (lo + hi)
        if capacity(mid) >= n_tasks:
            hi = mid
        else:
            lo = mid
    k = np.floor(active_time(hi) / d_i + 1e-9).astype(np.int64)
    return ExecutionOutcome(
        finish_time=hi,
        n_tasks=int(n_tasks),
        n_nodes=int(ready.size),
        tasks_per_node_max=int(k.max()) if k.size else 0,
    )


def makespan_heap(
    ready_times: np.ndarray,
    task_wall_seconds: Sequence[float],
) -> ExecutionOutcome:
    """General greedy pull scheduling: heterogeneous tasks, shared queue.

    Tasks are handed out in order; each goes to the node that frees up
    earliest.  O(n log N).
    """
    ready = np.asarray(ready_times, dtype=float)
    durations = np.asarray(task_wall_seconds, dtype=float)
    if ready.ndim != 1 or ready.size == 0:
        raise AnalysisError("ready_times must be a non-empty 1-D array")
    if durations.ndim != 1 or durations.size == 0:
        raise AnalysisError("task_wall_seconds must be a non-empty 1-D array")
    if np.any(durations <= 0):
        raise AnalysisError("task durations must be > 0")

    # Hoist numpy out of the hot loop: native-float lists iterate ~5x
    # faster than ndarray element access, and the heap then holds plain
    # (float, int) tuples.
    ready_list = ready.tolist()
    dur_list = durations.tolist()
    n_nodes = len(ready_list)

    if durations.size <= n_nodes and ready.min() == ready.max():
        # Uniform-ready shortcut: with every node free at the same
        # instant and no more tasks than nodes, greedy pull hands task j
        # to node j — no heap needed.
        start = ready_list[0]
        return ExecutionOutcome(
            finish_time=start + max(dur_list),
            n_tasks=int(durations.size),
            n_nodes=n_nodes,
            tasks_per_node_max=1,
        )

    heap = [(t, i) for i, t in enumerate(ready_list)]
    heapq.heapify(heap)
    heappop, heappush = heapq.heappop, heapq.heappush
    counts = [0] * n_nodes
    finish = min(ready_list)
    for dur in dur_list:
        available, idx = heappop(heap)
        done = available + dur
        counts[idx] += 1
        if done > finish:
            finish = done
        heappush(heap, (done, idx))
    return ExecutionOutcome(
        finish_time=finish,
        n_tasks=int(durations.size),
        n_nodes=n_nodes,
        tasks_per_node_max=max(counts),
    )
