"""Vectorised receiver populations and end-to-end OddCI-DTV runs.

A :class:`VectorPopulation` holds the state of up to hundreds of
millions of receivers as NumPy arrays (power mode, idle/busy, link
state, device factor) and implements the wakeup semantics in bulk:
requirement filtering, the probability gate, carousel wakeup-latency
sampling.

Randomness follows the event tier's named-stream contract: construct
with ``seed=`` and every stochastic component draws from its own
SeedSequence-derived stream (``"vector.population"`` for the initial
state, ``"vector.recruit"`` for the probability gate,
``"vector.wakeup"`` for carousel phases, ``"vector.churn"`` for
availability sampling, ``"vector.faults"`` for fault-plan jitter and
victim selection).  The legacy positional-``rng`` constructor is kept
for single-shot callers — it aliases every stream to the one generator,
preserving the historical draw order exactly.

:class:`VectorOddCI` is the legacy single-shot pipeline (one population,
one job, release at the end); multi-job execution with faults, census
and telemetry lives in :class:`~repro.vector.system.VectorOddCISystem`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.carousel.carousel import CarouselSchedule
from repro.carousel.dsmcc import SectionFormat
from repro.carousel.objects import CarouselFile
from repro.net.message import bits_from_bytes
from repro.sim.rng import derive_generator
from repro.vector.executor import (
    ExecutionOutcome,
    makespan_under_outages,
    makespan_waterfill,
    per_task_wall_seconds,
)
from repro.workloads.devices import (
    REFERENCE_STB,
    DeviceProfile,
    PowerMode,
)
from repro.workloads.job import Job

__all__ = ["STREAM_NAMES", "VectorPopulation", "VectorJobResult",
           "VectorOddCI"]

# Mode codes in the state arrays.
_OFF, _STANDBY, _IN_USE = 0, 1, 2

#: Named RNG streams a seeded population owns (sim/rng.py derivation:
#: ``derive_generator(seed, "vector.<name>")``).
STREAM_NAMES = ("population", "recruit", "wakeup", "churn", "faults")


class VectorPopulation:
    """Array-backed population of receivers.

    Parameters
    ----------
    n:
        Population size (tested to 10⁷; 10⁸ smoke).
    rng:
        Legacy single-stream generator.  When given, every named stream
        aliases it (historical draw order); mutually exclusive with
        ``seed``.
    seed:
        Master seed for the named streams (the event-tier contract;
        required for ``--jobs`` byte-parity of vector scenarios).
    in_use_fraction:
        Fraction of powered receivers watching TV.
    powered_fraction:
        Fraction of the population that is switched on at all.
    requirement_match_fraction:
        Fraction of receivers satisfying the wakeup requirements
        (heterogeneity abstracted to a rate at this scale).
    """

    def __init__(
        self,
        n: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[int] = None,
        in_use_fraction: float = 1.0,
        powered_fraction: float = 1.0,
        requirement_match_fraction: float = 1.0,
        profile: DeviceProfile = REFERENCE_STB,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        if rng is not None and seed is not None:
            raise ConfigurationError(
                "pass either a legacy rng or seed=, not both")
        for name, frac in (("in_use_fraction", in_use_fraction),
                           ("powered_fraction", powered_fraction),
                           ("requirement_match_fraction",
                            requirement_match_fraction)):
            if not 0.0 <= frac <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        self.n = int(n)
        self.seed = None if rng is not None else seed
        if rng is not None:
            self.streams: Dict[str, np.random.Generator] = {
                name: rng for name in STREAM_NAMES}
        else:
            self.streams = {
                name: derive_generator(seed, f"vector.{name}")
                for name in STREAM_NAMES}
        self.rng = self.streams["population"]
        self.profile = profile
        init = self.rng
        powered = init.random(self.n) < powered_fraction
        in_use = init.random(self.n) < in_use_fraction
        self.mode = np.where(
            powered, np.where(in_use, _IN_USE, _STANDBY), _OFF
        ).astype(np.int8)
        self.busy = np.zeros(self.n, dtype=bool)
        self.matches = init.random(self.n) < requirement_match_fraction
        #: Link state column — fault plans partition links by flipping
        #: these; a node with a down link cannot be recruited.
        self.link_up = np.ones(self.n, dtype=bool)
        self._in_use_factor = profile.factor(PowerMode.IN_USE)
        self._standby_factor = profile.factor(PowerMode.STANDBY)
        self.device_factor = np.where(
            self.mode == _IN_USE, self._in_use_factor, self._standby_factor
        ).astype(float)

    # -- census -----------------------------------------------------------
    @property
    def powered_count(self) -> int:
        return int((self.mode != _OFF).sum())

    @property
    def idle_count(self) -> int:
        return int(((self.mode != _OFF) & ~self.busy).sum())

    @property
    def busy_count(self) -> int:
        return int(self.busy.sum())

    def eligible_mask(self) -> np.ndarray:
        """Powered, idle, requirement-matching, link up."""
        return ((self.mode != _OFF) & ~self.busy & self.matches
                & self.link_up)

    # -- wakeup ------------------------------------------------------------
    def recruit(self, probability: float, *,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Apply the wakeup gate; returns the indices of accepting nodes.

        Eligible = powered, idle, requirement-matching, link up; each
        accepts independently with ``probability`` and flips to busy.
        Draws come from the ``"vector.recruit"`` stream unless an
        explicit ``rng`` overrides it.
        """
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {probability}")
        draw = self.streams["recruit"] if rng is None else rng
        accept = self.eligible_mask() & (draw.random(self.n) < probability)
        self.busy |= accept
        return np.nonzero(accept)[0]

    def release(self, indices: Optional[np.ndarray] = None) -> None:
        """Reset recruited nodes to idle (``None`` = everyone)."""
        if indices is None:
            self.busy[:] = False
        else:
            self.busy[indices] = False

    # -- churn / fault state ops -------------------------------------------
    def power_off(self, indices: np.ndarray) -> None:
        """Correlated power-off (churn-storm victims): any running work
        is dropped with the power."""
        self.mode[indices] = _OFF
        self.busy[indices] = False

    def power_on(self, indices: np.ndarray, *, in_use: bool = False) -> None:
        """Return nodes to the powered pool (standby unless ``in_use``)."""
        mode = _IN_USE if in_use else _STANDBY
        self.mode[indices] = mode
        self.device_factor[indices] = (
            self._in_use_factor if in_use else self._standby_factor)

    def set_link(self, indices: np.ndarray, up: bool) -> None:
        """Partition (or heal) the direct links of ``indices``."""
        self.link_up[indices] = up

    def validate(self) -> None:
        """Shape/dtype/invariant assertions (mirrors the census stores'
        numpy-boundary self-checks)."""
        n = self.n
        for name, column, dtype in (
                ("mode", self.mode, np.int8),
                ("busy", self.busy, np.bool_),
                ("matches", self.matches, np.bool_),
                ("link_up", self.link_up, np.bool_),
                ("device_factor", self.device_factor, np.float64)):
            assert column.shape == (n,), f"{name} shape {column.shape}"
            assert column.dtype == dtype, f"{name} dtype {column.dtype}"
        assert not (self.busy & (self.mode == _OFF)).any(), \
            "powered-off nodes cannot be busy"
        assert np.isin(self.mode, (_OFF, _STANDBY, _IN_USE)).all(), \
            "unknown mode code"
        assert (self.device_factor > 0).all(), "non-positive device factor"


@dataclass(frozen=True)
class VectorJobResult:
    """Outcome of a vectorised job execution."""

    n_tasks: int
    recruited: int
    wakeup_mean_s: float
    makespan_s: float
    efficiency: float
    tasks_per_node_max: int


class VectorOddCI:
    """Vectorised OddCI-DTV pipeline: wakeup + pull execution (legacy
    single-shot API).

    Mirrors the event tier's DVE loop timing for homogeneous bags:
    per-task wall time = (s + r)/δ + p·device_factor; wakeup latency is
    sampled from the carousel schedule of a carousel carrying the PNA
    Xlet, the config file and the job image.  No faults, no census, no
    persistent clock — the multi-job peer of the event tier is
    :class:`~repro.vector.system.VectorOddCISystem`.
    """

    def __init__(
        self,
        population: VectorPopulation,
        *,
        beta_bps: float = 1_000_000.0,
        delta_bps: float = 150_000.0,
        pna_xlet_bits: float = bits_from_bytes(256 * 1024),
        config_bits: float = bits_from_bytes(4 * 1024),
        section_format: Optional[SectionFormat] = None,
    ) -> None:
        if beta_bps <= 0 or delta_bps <= 0:
            raise ConfigurationError("channel rates must be > 0")
        self.population = population
        self.beta_bps = float(beta_bps)
        self.delta_bps = float(delta_bps)
        self.pna_xlet_bits = float(pna_xlet_bits)
        self.config_bits = float(config_bits)
        self.section_format = section_format or SectionFormat()

    def carousel_schedule(self, image_bits: float) -> CarouselSchedule:
        """Schedule of the carousel while staging an image of this size."""
        files = [
            CarouselFile(name="pna.bin", size_bits=self.pna_xlet_bits),
            CarouselFile(name="oddci.config", size_bits=self.config_bits),
            CarouselFile(name="image", size_bits=float(image_bits)),
        ]
        return CarouselSchedule(files, self.beta_bps,
                                section_format=self.section_format)

    def run_job(self, job: Job, target_size: int) -> VectorJobResult:
        """Recruit ~``target_size`` nodes and execute ``job`` on them.

        Uses deficit-proportional probability against the exact idle
        census (the best case the Controller's estimator approaches).
        """
        if target_size <= 0:
            raise ConfigurationError("target_size must be > 0")
        pop = self.population
        idle = pop.idle_count
        if idle == 0:
            raise AnalysisError("no idle nodes to recruit")
        probability = min(1.0, target_size / idle)
        recruited = pop.recruit(probability)
        if recruited.size == 0:
            raise AnalysisError(
                "recruitment yielded zero nodes (population too small?)")

        # Wakeup: every recruited node reads the image from the carousel
        # at a uniformly random phase.
        sched = self.carousel_schedule(job.image_bits)
        requests = self.rng_uniform_phases(sched, recruited.size)
        ready = np.asarray(
            sched.completion_time("image", requests), dtype=float)
        wakeup_mean = float((ready - requests).mean())

        stats = job.stats()
        factors = pop.device_factor[recruited]
        outcome = self._execute(ready, factors, job.n,
                                stats.mean_ref_seconds, stats.mean_io_bits)
        makespan = outcome.finish_time  # origin = submission at t=0
        ideal = job.n * stats.mean_ref_seconds * float(factors.mean()) \
            / recruited.size
        efficiency = min(1.0, ideal / makespan) if makespan > 0 else 0.0
        pop.release(recruited)
        return VectorJobResult(
            n_tasks=job.n,
            recruited=int(recruited.size),
            wakeup_mean_s=wakeup_mean,
            makespan_s=makespan,
            efficiency=efficiency,
            tasks_per_node_max=outcome.tasks_per_node_max,
        )

    def rng_uniform_phases(self, sched: CarouselSchedule,
                           size: int) -> np.ndarray:
        """Uniform request times over one carousel cycle (steady state)."""
        return self.population.streams["wakeup"].uniform(
            0.0, sched.cycle_time, size=int(size))

    def _execute(
        self,
        ready: np.ndarray,
        factors: np.ndarray,
        n_tasks: int,
        mean_ref_seconds: float,
        mean_io_bits: float,
    ) -> ExecutionOutcome:
        unique = np.unique(factors)
        if unique.size == 1:
            d = per_task_wall_seconds(mean_ref_seconds, mean_io_bits,
                                      self.delta_bps, float(unique[0]))
            return makespan_waterfill(ready, n_tasks, d)
        # Heterogeneous devices: generalised waterfill (shared solver,
        # no outage windows).
        d_i = (mean_io_bits / self.delta_bps
               + mean_ref_seconds * factors)
        return makespan_under_outages(ready, n_tasks, d_i)
