"""Vectorised receiver populations and end-to-end OddCI-DTV runs.

A :class:`VectorPopulation` holds the state of up to tens of millions of
receivers as NumPy arrays (power mode, idle/busy, device factor) and
implements the wakeup semantics in bulk: requirement filtering, the
probability gate, carousel wakeup-latency sampling.

:class:`VectorOddCI` composes a population with a carousel schedule and
the vectorised executors to produce job makespans and efficiencies that
mirror the event tier — the basis of the Figure 6/7 simulation
cross-check and the scalability benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.carousel.carousel import CarouselSchedule
from repro.carousel.dsmcc import SectionFormat
from repro.carousel.objects import CarouselFile
from repro.net.message import bits_from_bytes
from repro.vector.executor import (
    ExecutionOutcome,
    makespan_waterfill,
    per_task_wall_seconds,
)
from repro.workloads.devices import (
    REFERENCE_STB,
    DeviceProfile,
    PowerMode,
)
from repro.workloads.job import Job

__all__ = ["VectorPopulation", "VectorJobResult", "VectorOddCI"]

# Mode codes in the state arrays.
_OFF, _STANDBY, _IN_USE = 0, 1, 2


class VectorPopulation:
    """Array-backed population of receivers.

    Parameters
    ----------
    n:
        Population size (tested to 10⁷).
    in_use_fraction:
        Fraction of powered receivers watching TV.
    powered_fraction:
        Fraction of the population that is switched on at all.
    requirement_match_fraction:
        Fraction of receivers satisfying the wakeup requirements
        (heterogeneity abstracted to a rate at this scale).
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator,
        *,
        in_use_fraction: float = 1.0,
        powered_fraction: float = 1.0,
        requirement_match_fraction: float = 1.0,
        profile: DeviceProfile = REFERENCE_STB,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        for name, frac in (("in_use_fraction", in_use_fraction),
                           ("powered_fraction", powered_fraction),
                           ("requirement_match_fraction",
                            requirement_match_fraction)):
            if not 0.0 <= frac <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        self.n = int(n)
        self.rng = rng
        self.profile = profile
        powered = rng.random(self.n) < powered_fraction
        in_use = rng.random(self.n) < in_use_fraction
        self.mode = np.where(
            powered, np.where(in_use, _IN_USE, _STANDBY), _OFF
        ).astype(np.int8)
        self.busy = np.zeros(self.n, dtype=bool)
        self.matches = rng.random(self.n) < requirement_match_fraction
        in_use_factor = profile.factor(PowerMode.IN_USE)
        standby_factor = profile.factor(PowerMode.STANDBY)
        self.device_factor = np.where(
            self.mode == _IN_USE, in_use_factor, standby_factor
        ).astype(float)

    # -- census -----------------------------------------------------------
    @property
    def powered_count(self) -> int:
        return int((self.mode != _OFF).sum())

    @property
    def idle_count(self) -> int:
        return int(((self.mode != _OFF) & ~self.busy).sum())

    @property
    def busy_count(self) -> int:
        return int(self.busy.sum())

    # -- wakeup ------------------------------------------------------------
    def recruit(self, probability: float) -> np.ndarray:
        """Apply the wakeup gate; returns the indices of accepting nodes.

        Eligible = powered, idle, requirement-matching; each accepts
        independently with ``probability`` and flips to busy.
        """
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in (0, 1], got {probability}")
        eligible = (self.mode != _OFF) & ~self.busy & self.matches
        accept = eligible & (self.rng.random(self.n) < probability)
        self.busy |= accept
        return np.nonzero(accept)[0]

    def release(self, indices: Optional[np.ndarray] = None) -> None:
        """Reset recruited nodes to idle (``None`` = everyone)."""
        if indices is None:
            self.busy[:] = False
        else:
            self.busy[indices] = False


@dataclass(frozen=True)
class VectorJobResult:
    """Outcome of a vectorised job execution."""

    n_tasks: int
    recruited: int
    wakeup_mean_s: float
    makespan_s: float
    efficiency: float
    tasks_per_node_max: int


class VectorOddCI:
    """Vectorised OddCI-DTV pipeline: wakeup + pull execution.

    Mirrors the event tier's DVE loop timing for homogeneous bags:
    per-task wall time = (s + r)/δ + p·device_factor; wakeup latency is
    sampled from the carousel schedule of a carousel carrying the PNA
    Xlet, the config file and the job image.
    """

    def __init__(
        self,
        population: VectorPopulation,
        *,
        beta_bps: float = 1_000_000.0,
        delta_bps: float = 150_000.0,
        pna_xlet_bits: float = bits_from_bytes(256 * 1024),
        config_bits: float = bits_from_bytes(4 * 1024),
        section_format: Optional[SectionFormat] = None,
    ) -> None:
        if beta_bps <= 0 or delta_bps <= 0:
            raise ConfigurationError("channel rates must be > 0")
        self.population = population
        self.beta_bps = float(beta_bps)
        self.delta_bps = float(delta_bps)
        self.pna_xlet_bits = float(pna_xlet_bits)
        self.config_bits = float(config_bits)
        self.section_format = section_format or SectionFormat()

    def carousel_schedule(self, image_bits: float) -> CarouselSchedule:
        """Schedule of the carousel while staging an image of this size."""
        files = [
            CarouselFile(name="pna.bin", size_bits=self.pna_xlet_bits),
            CarouselFile(name="oddci.config", size_bits=self.config_bits),
            CarouselFile(name="image", size_bits=float(image_bits)),
        ]
        return CarouselSchedule(files, self.beta_bps,
                                section_format=self.section_format)

    def run_job(self, job: Job, target_size: int) -> VectorJobResult:
        """Recruit ~``target_size`` nodes and execute ``job`` on them.

        Uses deficit-proportional probability against the exact idle
        census (the best case the Controller's estimator approaches).
        """
        if target_size <= 0:
            raise ConfigurationError("target_size must be > 0")
        pop = self.population
        idle = pop.idle_count
        if idle == 0:
            raise AnalysisError("no idle nodes to recruit")
        probability = min(1.0, target_size / idle)
        recruited = pop.recruit(probability)
        if recruited.size == 0:
            raise AnalysisError(
                "recruitment yielded zero nodes (population too small?)")

        # Wakeup: every recruited node reads the image from the carousel
        # at a uniformly random phase.
        sched = self.carousel_schedule(job.image_bits)
        requests = self.rng_uniform_phases(sched, recruited.size)
        ready = np.asarray(
            sched.completion_time("image", requests), dtype=float)
        wakeup_mean = float((ready - requests).mean())

        stats = job.stats()
        factors = pop.device_factor[recruited]
        # Homogeneous-device fast path; otherwise bucket by factor.
        outcome = self._execute(ready, factors, job.n,
                                stats.mean_ref_seconds, stats.mean_io_bits)
        makespan = outcome.finish_time  # origin = submission at t=0
        ideal = job.n * stats.mean_ref_seconds * float(factors.mean()) \
            / recruited.size
        efficiency = min(1.0, ideal / makespan) if makespan > 0 else 0.0
        pop.release(recruited)
        return VectorJobResult(
            n_tasks=job.n,
            recruited=int(recruited.size),
            wakeup_mean_s=wakeup_mean,
            makespan_s=makespan,
            efficiency=efficiency,
            tasks_per_node_max=outcome.tasks_per_node_max,
        )

    def rng_uniform_phases(self, sched: CarouselSchedule,
                           size: int) -> np.ndarray:
        """Uniform request times over one carousel cycle (steady state)."""
        return self.population.rng.uniform(
            0.0, sched.cycle_time, size=int(size))

    def _execute(
        self,
        ready: np.ndarray,
        factors: np.ndarray,
        n_tasks: int,
        mean_ref_seconds: float,
        mean_io_bits: float,
    ) -> ExecutionOutcome:
        unique = np.unique(factors)
        if unique.size == 1:
            d = per_task_wall_seconds(mean_ref_seconds, mean_io_bits,
                                      self.delta_bps, float(unique[0]))
            return makespan_waterfill(ready, n_tasks, d)
        # Heterogeneous devices: generalised waterfill (binary search on
        # the joint capacity function; finish snapped to the boundary —
        # within one task duration of exact, adequate at this scale).
        d_i = (mean_io_bits / self.delta_bps
               + mean_ref_seconds * factors)

        def capacity(t: float) -> int:
            return int(np.floor(
                np.maximum(t - ready, 0.0) / d_i).sum())

        lo = float((ready + d_i).min())
        hi = float(ready.min()) + float(d_i.max()) * n_tasks
        for _ in range(200):
            if hi - lo <= max(1e-9, 1e-12 * hi):
                break
            mid = 0.5 * (lo + hi)
            if capacity(mid) >= n_tasks:
                hi = mid
            else:
                lo = mid
        k = np.floor(np.maximum(hi - ready, 0.0) / d_i + 1e-9).astype(
            np.int64)
        active = k > 0
        finish = float((ready[active] + k[active] * d_i[active]).max()) \
            if active.any() else hi
        return ExecutionOutcome(
            finish_time=min(finish, hi) if active.any() else hi,
            n_tasks=int(n_tasks),
            n_nodes=int(ready.size),
            tasks_per_node_max=int(k.max()) if active.any() else 0,
        )
