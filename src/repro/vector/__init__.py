"""Vector tier: array-based simulation of very large populations.

Provides the same wakeup + pull-execution semantics as the event tier,
computed with NumPy over millions of nodes:

* :class:`~repro.vector.population.VectorPopulation` — state arrays and
  bulk recruitment.
* :class:`~repro.vector.population.VectorOddCI` — full job pipeline
  (carousel wakeup sampling → greedy pull execution → efficiency).
* :mod:`~repro.vector.executor` — exact greedy-pull makespans
  (water-filling for homogeneous bags, heap for the general case).
"""

from repro.vector.executor import (
    ExecutionOutcome,
    makespan_heap,
    makespan_waterfill,
    per_task_wall_seconds,
)
from repro.vector.population import VectorJobResult, VectorOddCI, VectorPopulation

__all__ = [
    "ExecutionOutcome",
    "makespan_waterfill",
    "makespan_heap",
    "per_task_wall_seconds",
    "VectorPopulation",
    "VectorOddCI",
    "VectorJobResult",
]
