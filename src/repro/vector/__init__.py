"""Vector tier: array-based simulation of very large populations.

Provides the same wakeup + pull-execution semantics as the event tier,
computed with NumPy over millions of nodes:

* :class:`~repro.vector.population.VectorPopulation` — state arrays and
  bulk recruitment, with the event tier's named RNG streams.
* :class:`~repro.vector.system.VectorOddCISystem` — the event tier's
  peer: persistent population, sequential multi-job submissions on one
  clock, fault-plan windows, columnar census and telemetry.
* :class:`~repro.vector.population.VectorOddCI` — legacy single-shot
  job pipeline (carousel wakeup sampling → greedy pull execution →
  efficiency).
* :mod:`~repro.vector.executor` — greedy-pull makespans (exact
  water-filling for homogeneous bags, outage-aware generalisation, heap
  for the general case).
* :class:`~repro.vector.census.VectorCensus` — struct-of-arrays census
  with the event tier's grace-window liveness and metric names.
"""

from repro.vector.census import VectorCensus
from repro.vector.executor import (
    ExecutionOutcome,
    makespan_heap,
    makespan_under_outages,
    makespan_waterfill,
    per_task_wall_seconds,
)
from repro.vector.population import VectorJobResult, VectorOddCI, VectorPopulation
from repro.vector.system import VectorJobReport, VectorOddCISystem

__all__ = [
    "ExecutionOutcome",
    "makespan_waterfill",
    "makespan_under_outages",
    "makespan_heap",
    "per_task_wall_seconds",
    "VectorCensus",
    "VectorPopulation",
    "VectorOddCI",
    "VectorJobResult",
    "VectorJobReport",
    "VectorOddCISystem",
]
