"""Columnar census for the vector tier.

The event tier's Controller keeps a :class:`ColumnarCensusStore` keyed
by interned PNA ids; at 10⁷+ nodes the population indices *are* the
dense ids, so the vector census holds the same struct-of-arrays layout
(state / last-seen / instance columns, :data:`STATE_NONE` and the
``-inf`` never-seen sentinel from :mod:`repro.core.census`) directly
over population rows and computes every gauge as an array reduction via
:func:`repro.core.census.registry_reductions` — same metric names
(``census.registry_size`` / ``census.idle`` / ``census.alive``,
``census.heartbeats``), same grace-window liveness convention (a node
is alive when seen within ``grace`` of now).

Self-healing works exactly like the event tier's controller-crash
recovery: :meth:`clear` wipes the columns (the census reads zero, so
availability accounting sees downtime) and the next heartbeat epoch
repopulates them from the live fleet.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.census import (
    STATE_BUSY,
    STATE_IDLE,
    STATE_NONE,
    _NEVER,
    registry_reductions,
)
from repro.errors import ConfigurationError
from repro.telemetry import trace as telemetry

__all__ = ["VectorCensus"]

_NO_INSTANCE = -1


class VectorCensus:
    """Struct-of-arrays census over ``n`` population rows.

    Parameters
    ----------
    n:
        Population size (row *index* is the node id).
    grace_s:
        Liveness horizon: a node counts as alive when its last heartbeat
        is within ``grace_s`` of the consolidation instant (the event
        tier uses 3x the heartbeat interval; callers pass the same).
    """

    def __init__(self, n: int, *, grace_s: float) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be > 0, got {n}")
        if grace_s <= 0:
            raise ConfigurationError(f"grace_s must be > 0, got {grace_s}")
        self.n = int(n)
        self.grace_s = float(grace_s)
        self.state = np.full(self.n, STATE_NONE, dtype=np.int8)
        self.seen = np.full(self.n, _NEVER, dtype=float)
        self.instance = np.full(self.n, _NO_INSTANCE, dtype=np.int64)
        #: Last reductions computed by :meth:`consolidate`.
        self.gauges: Dict[str, int] = {
            "registry_size": 0, "idle": 0, "alive": 0}
        metrics = telemetry.metrics_registry()
        if metrics is None:
            self._m_heartbeats = None
            self._m_registry = self._m_idle = self._m_alive = None
        else:
            self._m_heartbeats = metrics.counter("census.heartbeats")
            self._m_registry = metrics.gauge("census.registry_size")
            self._m_idle = metrics.gauge("census.idle")
            self._m_alive = metrics.gauge("census.alive")

    # -- writes ------------------------------------------------------------
    def observe(self, indices: np.ndarray, state: int,
                instance: int, now: float) -> None:
        """Record a state transition for ``indices`` (vector analogue of
        the per-payload ``touch``)."""
        if state not in (STATE_NONE, STATE_IDLE, STATE_BUSY):
            raise ConfigurationError(f"unknown census state {state}")
        self.state[indices] = state
        self.seen[indices] = now
        self.instance[indices] = (
            instance if state == STATE_BUSY else _NO_INSTANCE)

    def heartbeat(self, indices: np.ndarray, now: float) -> None:
        """One heartbeat batch: refresh last-seen for ``indices``."""
        self.seen[indices] = now
        m = self._m_heartbeats
        if m is not None:
            m.value += int(np.size(indices))

    def drop(self, indices: np.ndarray) -> None:
        """Evict ``indices`` (powered-off victims leave the registry)."""
        self.state[indices] = STATE_NONE
        self.seen[indices] = _NEVER
        self.instance[indices] = _NO_INSTANCE

    def clear(self) -> None:
        """Controller-crash semantics: the census restarts empty and the
        next heartbeat epoch repopulates it."""
        self.state[:] = STATE_NONE
        self.seen[:] = _NEVER
        self.instance[:] = _NO_INSTANCE

    # -- reads -------------------------------------------------------------
    def consolidate(self, now: float) -> Dict[str, int]:
        """Array-reduction gauges at ``now`` (and push them to the
        ambient metrics registry, like a Controller maintenance round)."""
        out = registry_reductions(self.state, self.seen,
                                  horizon=now - self.grace_s)
        self.gauges = out
        if self._m_registry is not None:
            self._m_registry.set(out["registry_size"])
            self._m_idle.set(out["idle"])
            self._m_alive.set(out["alive"])
        return out

    def instance_size(self, instance: int, now: float) -> int:
        """Members of ``instance`` seen within the grace window."""
        horizon = now - self.grace_s
        return int(np.count_nonzero(
            (self.instance == instance) & (self.seen >= horizon)))

    def validate(self) -> None:
        """Numpy-boundary self-checks (mirrors the columnar store)."""
        n = self.n
        assert self.state.shape == (n,) and self.state.dtype == np.int8
        assert self.seen.shape == (n,) and self.seen.dtype == np.float64
        assert self.instance.shape == (n,) \
            and self.instance.dtype == np.int64
        absent = self.state == STATE_NONE
        assert (self.seen[absent] == _NEVER).all(), \
            "absent nodes must read never-seen"
        assert (self.instance[self.state != STATE_BUSY]
                == _NO_INSTANCE).all(), \
            "only busy nodes carry an instance id"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<VectorCensus n={self.n} "
                f"registry={self.gauges['registry_size']}>")
