"""Multi-job vector-tier system: persistent population, faults, census.

:class:`VectorOddCISystem` is the vector tier's peer of
:class:`~repro.core.system.OddCISystem`: a persistent
:class:`~repro.vector.population.VectorPopulation` accepts sequential
job submissions against one simulation clock (Provider semantics —
each job recruits from whatever the previous jobs left idle), a
:class:`~repro.vector.census.VectorCensus` tracks membership with the
event tier's grace-window liveness convention, and an installed
:class:`~repro.faults.plan.FaultPlan` is honoured by compiling it to
interval windows (:mod:`repro.faults.masks`) applied as array masks:

* recruitment blackouts defer a submission's wakeup past the window;
* compute outages remove a victim subset's capacity for the window
  (victims drawn per cohort from the ``"vector.faults"`` stream with
  the event-tier injector's ``max(1, round(f*n))`` rule);
* census outages (controller crash) zero the census — availability
  integrates the downtime exactly as
  :func:`repro.faults.availability.availability_fraction` does on
  event-tier size histories.

Everything is O(cohort) array math per sample instant; census epochs
and the availability grid are bounded (``census_epochs``,
``availability_samples``) so a 10⁷-node job costs a fixed number of
vector passes regardless of simulated duration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.carousel.dsmcc import SectionFormat
from repro.core.census import STATE_BUSY, STATE_IDLE
from repro.errors import AnalysisError, ConfigurationError
from repro.faults.masks import (
    CompiledFaultPlan,
    FaultWindow,
    compile_fault_plan,
    deferred_start,
    storm_victims,
)
from repro.faults.availability import availability_fraction
from repro.faults.plan import FaultPlan, current_plan
from repro.net.message import bits_from_bytes
from repro.sim.monitor import TimeSeries
from repro.telemetry import trace as telemetry
from repro.vector.census import VectorCensus
from repro.vector.executor import makespan_under_outages
from repro.vector.population import VectorOddCI, VectorPopulation
from repro.workloads.devices import REFERENCE_STB, DeviceProfile
from repro.workloads.job import Job

__all__ = ["VectorJobReport", "VectorOddCISystem"]


@dataclass(frozen=True)
class VectorJobReport:
    """Outcome of one submission against a persistent vector system.

    Superset of the legacy :class:`~repro.vector.population.
    VectorJobResult` fields, with absolute submit/start/finish times on
    the system clock, the availability fraction over the job window and
    the census gauges observed at the final consolidation epoch.
    """

    job_index: int
    n_tasks: int
    recruited: int
    wakeup_mean_s: float
    makespan_s: float
    efficiency: float
    tasks_per_node_max: int
    submit_time: float
    start_time: float
    finish_time: float
    availability: float
    census: Dict[str, int]
    #: Step-function instance size over the job window (the vector
    #: pendant of the Controller's ``size_history`` series) — lets
    #: callers re-integrate availability over a window of their choice.
    size_series: Optional[TimeSeries] = field(
        default=None, compare=False, repr=False)


class VectorOddCISystem:
    """Persistent-population OddCI system on the vector tier.

    Parameters
    ----------
    n:
        Population size (ignored when ``population`` is given).
    population:
        An existing :class:`VectorPopulation` to adopt; otherwise one is
        built from ``n``/``seed`` and the fraction parameters.
    seed:
        Master seed for the named ``vector.*`` streams.
    plan:
        Fault plan to honour; defaults to the ambient installed plan
        (:func:`repro.faults.plan.current_plan`), matching how event-tier
        systems pick up faults inside ``with active_plan(...)``.
    heartbeat_interval_s / grace_heartbeats:
        Liveness convention — a node is alive when seen within
        ``grace_heartbeats * heartbeat_interval_s``; the event tier's
        Controller uses the same 3x default.
    census_epochs / availability_samples:
        Sampling budgets: at most this many consolidation rounds /
        availability-grid quantile points per job, keeping per-job cost
        a fixed number of array passes at any simulated duration.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        *,
        population: Optional[VectorPopulation] = None,
        seed: int = 0,
        in_use_fraction: float = 1.0,
        powered_fraction: float = 1.0,
        requirement_match_fraction: float = 1.0,
        profile: DeviceProfile = REFERENCE_STB,
        beta_bps: float = 1_000_000.0,
        delta_bps: float = 150_000.0,
        pna_xlet_bits: float = bits_from_bytes(256 * 1024),
        config_bits: float = bits_from_bytes(4 * 1024),
        section_format: Optional[SectionFormat] = None,
        heartbeat_interval_s: float = 30.0,
        grace_heartbeats: float = 3.0,
        census_epochs: int = 12,
        availability_samples: int = 128,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        if population is None:
            if n is None:
                raise ConfigurationError("pass n or an existing population")
            population = VectorPopulation(
                n, seed=seed,
                in_use_fraction=in_use_fraction,
                powered_fraction=powered_fraction,
                requirement_match_fraction=requirement_match_fraction,
                profile=profile)
        self.population = population
        if heartbeat_interval_s <= 0:
            raise ConfigurationError("heartbeat_interval_s must be > 0")
        if census_epochs < 1 or availability_samples < 2:
            raise ConfigurationError("sampling budgets are too small")
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.census_epochs = int(census_epochs)
        self.availability_samples = int(availability_samples)
        # The legacy pipeline supplies the carousel/channel math; the
        # system layers clock, faults, census and telemetry around it.
        self.pipeline = VectorOddCI(
            population,
            beta_bps=beta_bps, delta_bps=delta_bps,
            pna_xlet_bits=pna_xlet_bits, config_bits=config_bits,
            section_format=section_format)
        self.census = VectorCensus(
            population.n,
            grace_s=grace_heartbeats * self.heartbeat_interval_s)
        active = plan if plan is not None else current_plan()
        if active is not None and not active.events:
            active = None
        self.plan: Optional[FaultPlan] = active
        self.compiled: CompiledFaultPlan = compile_fault_plan(
            active, population.streams["faults"]
        ) if active is not None else CompiledFaultPlan((), name="")
        self.now = 0.0
        self.reports: List[VectorJobReport] = []
        self._trace = telemetry.channel("vector")
        metrics = telemetry.metrics_registry()
        if metrics is None:
            self._m_injected = self._m_restored = None
        else:
            self._m_injected = metrics.counter("fault.injected")
            self._m_restored = metrics.counter("fault.restored")

    # -- submission --------------------------------------------------------
    def run_job(self, job: Job, target_size: int) -> VectorJobReport:
        """Submit ``job`` at the current clock and run it to completion.

        ``job`` is anything quacking like a uniform bag (a real
        :class:`~repro.workloads.job.Job`, or a constant-space
        :class:`~repro.workloads.bot.BagSpec` at 10⁷+ scale — only
        ``n``, ``image_bits`` and ``stats()`` are read).  Advances
        :attr:`now` to the job's finish time; the recruited nodes
        return to the idle pool afterwards (Provider semantics for
        sequential submissions)."""
        if target_size <= 0:
            raise ConfigurationError("target_size must be > 0")
        pop = self.population
        t_submit = self.now
        t = self._trace
        if t is not None:
            t.emit(t_submit, "submit", job_index=len(self.reports),
                   n_tasks=job.n, target_size=int(target_size))

        # Recruitment: blackouts defer the broadcast, then the gate runs
        # against the exact idle census (the estimator's best case).
        blackouts = self.compiled.recruitment_blackouts()
        t_start = deferred_start(t_submit, blackouts)
        idle = pop.idle_count
        if idle == 0:
            raise AnalysisError("no idle nodes to recruit")
        probability = min(1.0, target_size / idle)
        recruited = pop.recruit(probability)
        if recruited.size == 0:
            raise AnalysisError(
                "recruitment yielded zero nodes (population too small?)")
        if t is not None:
            t.emit(t_start, "recruit", recruited=int(recruited.size),
                   probability=probability, deferred_s=t_start - t_submit)

        # Wakeup via the carousel, phases from the wakeup stream.
        sched = self.pipeline.carousel_schedule(job.image_bits)
        phases = self.pipeline.rng_uniform_phases(sched, recruited.size)
        ready = t_start + np.asarray(
            sched.completion_time("image", phases), dtype=float)
        wakeup_mean = float((ready - phases).mean() - t_start)

        # Compute outages overlapping the job: draw victims per window
        # from the faults stream (event-tier injector count rule).
        outages = self._applicable_outages(recruited.size, t_start)
        stats = job.stats()
        factors = pop.device_factor[recruited]
        unique = np.unique(factors)
        if unique.size == 1:
            d = (stats.mean_io_bits / self.pipeline.delta_bps
                 + stats.mean_ref_seconds * float(unique[0]))
        else:
            d = (stats.mean_io_bits / self.pipeline.delta_bps
                 + stats.mean_ref_seconds * factors)
        outcome = makespan_under_outages(
            ready, job.n, d,
            [(ws, we, mask) for ws, we, mask, _rv in outages])
        finish = outcome.finish_time
        makespan = finish - t_submit
        ideal = (job.n * stats.mean_ref_seconds * float(factors.mean())
                 / recruited.size)
        efficiency = min(1.0, ideal / makespan) if makespan > 0 else 0.0

        census_outages = [
            w for w in self.compiled.census_outages()
            if w.overlaps(t_submit, finish)]
        self._count_fault_windows(outages, census_outages, t_start, finish)
        gauges = self._run_census_epochs(
            recruited, outages, census_outages, t_start, finish,
            instance=len(self.reports))
        series = self._size_series(
            ready, outages, census_outages, t_submit, t_start, finish)
        availability = float(availability_fraction(
            series, int(target_size), size_tolerance=0.1,
            start=t_submit, until=finish))

        pop.release(recruited)
        self.census.observe(recruited, STATE_IDLE, -1, finish)
        self.now = finish
        report = VectorJobReport(
            job_index=len(self.reports),
            n_tasks=job.n,
            recruited=int(recruited.size),
            wakeup_mean_s=wakeup_mean,
            makespan_s=makespan,
            efficiency=efficiency,
            tasks_per_node_max=outcome.tasks_per_node_max,
            submit_time=t_submit,
            start_time=t_start,
            finish_time=finish,
            availability=availability,
            census=gauges,
            size_series=series,
        )
        self.reports.append(report)
        if t is not None:
            t.emit(finish, "finish", job_index=report.job_index,
                   makespan_s=makespan, efficiency=efficiency,
                   availability=availability)
        return report

    def run_jobs(self, submissions: Sequence[Tuple[Job, int]]
                 ) -> List[VectorJobReport]:
        """Run ``(job, target_size)`` submissions back to back."""
        return [self.run_job(job, target) for job, target in submissions]

    # -- fault application -------------------------------------------------
    def _applicable_outages(self, cohort: int, t_start: float):
        """Compute-outage windows that can still affect a job starting
        at ``t_start``, with per-cohort victim masks and the victims'
        sorted ready positions filled in later."""
        faults_rng = self.population.streams["faults"]
        out = []
        for w in self.compiled.compute_outages():
            if w.end <= t_start:
                continue
            mask = storm_victims(faults_rng, cohort, w.fraction)
            if not mask.any():
                continue
            out.append([max(w.start, t_start), w.end, mask, None])
        return out

    def _count_fault_windows(self, outages, census_outages,
                             t_start: float, finish: float) -> None:
        if self._m_injected is None:
            return
        windows = [(ws, we) for ws, we, _m, _rv in outages]
        windows += [(max(w.start, t_start), w.end) for w in census_outages]
        for ws, we in windows:
            if ws < finish:
                self._m_injected.value += 1
                if math.isfinite(we) and we <= finish:
                    self._m_restored.value += 1

    # -- census ------------------------------------------------------------
    def _run_census_epochs(self, recruited: np.ndarray, outages,
                           census_outages, t_start: float, finish: float,
                           *, instance: int) -> Dict[str, int]:
        """Bounded consolidation rounds over the job window.

        Each epoch heartbeats the nodes that are up at that instant
        (compute-outage victims miss their heartbeats, exactly like
        crashed PNAs) and consolidates; a controller-crash window clears
        the census and the next epoch self-heals it from the fleet."""
        census = self.census
        census.observe(recruited, STATE_BUSY, instance, t_start)
        span = finish - t_start
        epochs = min(self.census_epochs,
                     max(1, int(span / self.heartbeat_interval_s) or 1))
        times = np.linspace(t_start, finish, epochs + 1)[1:]
        t = self._trace
        gauges = census.consolidate(t_start)
        for te in times:
            te = float(te)
            if any(w.start <= te < w.end for w in census_outages):
                census.clear()
                gauges = census.consolidate(te)
                if t is not None:
                    t.emit(te, "census_outage", **gauges)
                continue
            up = np.ones(recruited.size, dtype=bool)
            for ws, we, mask, _rv in outages:
                if ws <= te < we:
                    up &= ~mask
            census.observe(recruited[up], STATE_BUSY, instance, te)
            census.heartbeat(recruited[up], te)
            gauges = census.consolidate(te)
            if t is not None:
                t.emit(te, "census_epoch", **gauges)
        return gauges

    # -- availability ------------------------------------------------------
    def _size_series(self, ready: np.ndarray, outages, census_outages,
                     t_submit: float, t_start: float,
                     finish: float) -> TimeSeries:
        """Step-function instance size on a bounded grid.

        Size at *t* = nodes ready by *t* minus the ready victims of each
        active compute-outage window (overlaps subtract twice — a
        conservative, never-optimistic size), zero during census
        outages.  Grid = ready-time quantiles + window edges + job
        boundaries, so the series has O(availability_samples) points at
        any cohort size."""
        ready_sorted = np.sort(ready)
        for entry in outages:
            entry[3] = np.sort(ready[entry[2]])

        def size_at(t: float) -> float:
            for w in census_outages:
                if w.start <= t < w.end:
                    return 0.0
            size = int(np.searchsorted(ready_sorted, t, side="right"))
            for ws, we, _mask, ready_victims in outages:
                if ws <= t < we:
                    size -= int(np.searchsorted(ready_victims, t,
                                                side="right"))
            return float(max(0, size))

        grid = {t_submit, t_start, finish}
        step = max(1, ready_sorted.size // self.availability_samples)
        grid.update(float(x) for x in ready_sorted[::step])
        grid.add(float(ready_sorted[-1]))
        for ws, we, _mask, _rv in outages:
            grid.add(ws)
            if math.isfinite(we):
                grid.add(we)
        for w in census_outages:
            grid.add(max(w.start, t_submit))
            if math.isfinite(w.end):
                grid.add(w.end)
        series = TimeSeries("vector_instance_size")
        for t in sorted(g for g in grid if t_submit <= g <= finish):
            series.record(t, size_at(t))
        return series
