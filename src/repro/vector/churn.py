"""Churn-aware execution at the vector tier.

The event tier simulates each receiver's ON/OFF sessions; at millions of
nodes we instead sample per-node availability traces lazily and compute
their effect on the fleet's *effective capacity*:

* :func:`effective_capacity` — expected fraction of recruited nodes
  still powered at time t after recruitment, for an exponential ON/OFF
  churn model (nodes recruited while ON; survival of the current ON
  session plus the steady-state return).
* :func:`makespan_under_churn` — inflates the per-task service rate by
  the time-averaged availability and adds the Controller's
  recomposition delay model, giving a closed-form pendant of the event
  tier's churn behaviour.
* :func:`sample_session_survival` — Monte-Carlo check of the ON-session
  survival curve used above (tests validate the closed form against
  it).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import AnalysisError
from repro.vector.executor import ExecutionOutcome, makespan_waterfill
from repro.workloads.traces import ChurnModel

__all__ = [
    "on_session_survival",
    "sample_session_survival",
    "effective_capacity",
    "makespan_under_churn",
]


def on_session_survival(model: ChurnModel, t: float) -> float:
    """P(a node recruited 'now' is still in the same ON session at t).

    Recruitment happens at a uniformly random point of an ON session, so
    the *residual* session length of an exponential ON time is again
    exponential (memorylessness): survival = exp(-t / mean_on).
    """
    if t < 0:
        raise AnalysisError("t must be >= 0")
    return math.exp(-t / model.mean_on_s)


def sample_session_survival(model: ChurnModel, t: float, n: int,
                            rng: np.random.Generator) -> float:
    """Monte-Carlo estimate of :func:`on_session_survival`."""
    if n <= 0:
        raise AnalysisError("n must be > 0")
    residual = rng.exponential(model.mean_on_s, size=n)
    return float((residual > t).mean())


def effective_capacity(model: ChurnModel, t: float) -> float:
    """Expected powered fraction of the recruited fleet at time t.

    Starts at 1 (everyone just accepted a wakeup, hence ON) and decays
    toward the steady-state availability a∞ = on/(on+off) with the
    two-state Markov chain's relaxation rate 1/on + 1/off::

        a(t) = a∞ + (1 − a∞) · exp(−(1/on + 1/off) · t)
    """
    if t < 0:
        raise AnalysisError("t must be >= 0")
    a_inf = model.steady_state_availability
    rate = 1.0 / model.mean_on_s + 1.0 / model.mean_off_s
    return a_inf + (1.0 - a_inf) * math.exp(-rate * t)


def makespan_under_churn(
    ready_times: np.ndarray,
    n_tasks: int,
    task_wall_seconds: float,
    model: Optional[ChurnModel],
    *,
    recomposition_lag_s: float = 0.0,
    tolerance: float = 1e-3,
    max_iterations: int = 100,
) -> ExecutionOutcome:
    """Greedy-pull finish time when nodes churn.

    Without churn this is exactly :func:`makespan_waterfill`.  With
    churn, the fleet's throughput over the horizon scales by the
    time-averaged effective capacity ā(T) (the Controller recomposes
    from the idle pool after ``recomposition_lag_s``, which shifts the
    capacity curve), so each task effectively costs
    ``task_wall_seconds / ā(T)``.  Since ā depends on the finish time T,
    the result is computed by fixed-point iteration.
    """
    if model is None:
        return makespan_waterfill(ready_times, n_tasks, task_wall_seconds)
    if recomposition_lag_s < 0:
        raise AnalysisError("recomposition_lag_s must be >= 0")

    def avg_capacity(horizon: float) -> float:
        if horizon <= 0:
            return 1.0
        # Mean of a(t) over [0, horizon], lag shifting recovery: during
        # the lag the fleet only decays (no recomposition), afterwards
        # the controller backfills to min(1, a(t) + recovered share).
        steps = 200
        ts = np.linspace(0.0, horizon, steps)
        a = np.array([effective_capacity(model, float(t)) for t in ts])
        if recomposition_lag_s > 0:
            # before recomposition kicks in, capacity is the raw ON-session
            # survival (no replacements yet)
            surv = np.array([on_session_survival(model, float(t))
                             for t in ts])
            early = ts < recomposition_lag_s
            a = np.where(early, surv, a)
        return float(a.mean())

    outcome = makespan_waterfill(ready_times, n_tasks, task_wall_seconds)
    finish = outcome.finish_time
    for _ in range(max_iterations):
        horizon = finish - float(np.min(ready_times))
        capacity = max(avg_capacity(horizon), 1e-6)
        new_outcome = makespan_waterfill(
            ready_times, n_tasks, task_wall_seconds / capacity)
        if abs(new_outcome.finish_time - finish) <= tolerance * max(
                finish, 1.0):
            return new_outcome
        finish = new_outcome.finish_time
        outcome = new_outcome
    return outcome
