"""OddCI: On-Demand Distributed Computing Infrastructure — reproduction.

A full Python implementation of the OddCI architecture (Costa,
Brasileiro, Lemos Filho, Mariz Sousa — SC/MTAGS 2009) and every
substrate it runs on:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.net` — broadcast channel (β) + direct channels (δ) +
  signed control messages.
* :mod:`repro.carousel` — DSM-CC object carousel.
* :mod:`repro.dtv` — transport stream, AIT, Xlets, set-top boxes.
* :mod:`repro.core` — the OddCI architecture: Provider, Controller,
  Backend, PNA, DVE (:class:`repro.core.OddCISystem` wires a generic
  deployment).
* :mod:`repro.dtv_oddci` — OddCI-DTV: the PNA as an AUTOSTART Xlet
  (:class:`repro.dtv_oddci.OddCIDTVSystem`).
* :mod:`repro.vector` — array-based tier for millions of nodes.
* :mod:`repro.workloads` — jobs, bag-of-tasks generators, mini-BLAST,
  device models, churn traces.
* :mod:`repro.baselines` — voluntary computing / desktop grid / IaaS
  comparators.
* :mod:`repro.analysis` — the Section 5 closed-form models and stats.
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro.core import OddCISystem
    from repro.workloads import uniform_bag

    system = OddCISystem(seed=42)
    system.add_pnas(10)
    job = uniform_bag(100, ref_seconds=5.0)
    submission = system.provider.submit_job(job, target_size=10)
    report = system.provider.run_job_to_completion(submission)
    print(report.makespan)
"""

from repro._version import __version__

__all__ = ["__version__"]
