"""Integration tests for OddCI-DTV: the full Section 4 stack.

AIT autostart -> PNA Xlet load from carousel -> config polling ->
wakeup -> image staging via carousel -> DVE task execution on STB
device models -> results at the Backend.
"""

import pytest

from repro.core.messages import PNAState
from repro.dtv.xlet import XletState
from repro.dtv_oddci import CONFIG_FILE, PNA_XLET_FILE, OddCIDTVSystem
from repro.errors import OddCIError
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.workloads import ChurnModel, PowerMode, REFERENCE_PC, uniform_bag


def build(n=6, beta=1_000_000.0, **kwargs):
    system = OddCIDTVSystem(beta_bps=beta, maintenance_interval_s=100.0,
                            seed=13, pna_xlet_bits=bits_from_bytes(64 * 1024),
                            **kwargs)
    system.add_receivers(n, heartbeat_interval_s=50.0,
                         dve_poll_interval_s=10.0)
    return system


def test_carousel_carries_control_files():
    system = build(n=1)
    names = system.control_plane.carousel.file_names
    assert PNA_XLET_FILE in names
    assert CONFIG_FILE in names


def test_pna_xlets_autostart_on_all_receivers():
    system = build(n=5)
    system.sim.run(until=60.0)
    assert system.online_count() == 5
    for stb in system.boxes:
        xlet = stb.app_manager.running_xlet(777)
        assert xlet is not None
        assert xlet.state is XletState.STARTED


def test_full_job_cycle_over_dtv():
    system = build(n=6)
    system.sim.run(until=30.0)  # let Xlets start
    job = uniform_bag(18, image_bits=1 * MEGABYTE, input_bits=4096,
                      ref_seconds=2.0, result_bits=4096, name="dtv-job")
    submission = system.provider.submit_job(
        job, target_size=6, heartbeat_interval_s=50.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.n_tasks == 18
    # STB in use is 20.6x slower: 18 tasks / 6 nodes * 2 s * 20.6 ~ 124 s
    # of compute, plus carousel wakeup (~13 s for 1 MB at 1 Mbps incl.
    # overheads) and I/O.
    assert report.makespan > 120.0
    assert report.distinct_workers <= 6


def test_wakeup_latency_matches_carousel_model():
    """Time from submit to all-busy is on the order of 1.5 cycles."""
    system = build(n=4)
    system.sim.run(until=30.0)
    image_bits = 2 * MEGABYTE
    job = uniform_bag(100, image_bits=image_bits, ref_seconds=1000.0)
    t0 = system.sim.now
    system.provider.submit_job(job, target_size=4, heartbeat_interval_s=50.0)
    while system.busy_count() < 4 and system.sim.now < t0 + 500.0:
        system.sim.step()
    elapsed = system.sim.now - t0
    sched = system.control_plane.carousel.schedule_snapshot(0.0)
    cycle = sched.cycle_time
    # All four must be busy within ~2.5 cycles of the new (larger) carousel.
    assert system.busy_count() == 4
    assert elapsed < 2.5 * cycle + 25.0


def test_stb_standby_executes_faster_than_in_use():
    def run_one(in_use_fraction):
        system = OddCIDTVSystem(beta_bps=4_000_000.0, seed=17,
                                maintenance_interval_s=100.0,
                                pna_xlet_bits=bits_from_bytes(64 * 1024))
        system.add_receivers(3, in_use_fraction=in_use_fraction,
                             heartbeat_interval_s=50.0,
                             dve_poll_interval_s=5.0)
        system.sim.run(until=10.0)
        job = uniform_bag(9, image_bits=MEGABYTE, ref_seconds=10.0,
                          name=f"mode-job-{in_use_fraction}")
        submission = system.provider.submit_job(job, target_size=3,
                                                heartbeat_interval_s=50.0)
        return system.provider.run_job_to_completion(
            submission, limit_s=1e7).makespan

    in_use = run_one(1.0)
    standby = run_one(0.0)
    assert standby < in_use
    # Compute dominates; ratio should approach 1.65.
    assert in_use / standby == pytest.approx(1.65, rel=0.25)


def test_powered_off_receivers_do_not_join():
    system = build(n=6)
    system.sim.run(until=30.0)
    for stb in system.boxes[:3]:
        stb.set_mode(PowerMode.OFF)
    job = uniform_bag(50, image_bits=MEGABYTE, ref_seconds=500.0)
    system.provider.submit_job(job, target_size=6, heartbeat_interval_s=50.0)
    system.sim.run(until=300.0)
    assert system.busy_count() == 3


def test_churned_receiver_relaunches_xlet_and_rejoins():
    system = OddCIDTVSystem(beta_bps=2_000_000.0, seed=19,
                            maintenance_interval_s=60.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(4, heartbeat_interval_s=30.0,
                         dve_poll_interval_s=10.0)
    system.sim.run(until=30.0)
    assert system.online_count() == 4
    stb = system.boxes[0]
    stb.set_mode(PowerMode.OFF)
    system.sim.run(until=60.0)
    assert system.online_count() == 3
    stb.set_mode(PowerMode.IN_USE)
    system.sim.run(until=200.0)
    assert system.online_count() == 4  # Xlet reloaded from carousel
    assert stb.app_manager.apps_launched >= 2


def test_reset_removes_image_from_carousel():
    system = build(n=3)
    system.sim.run(until=30.0)
    job = uniform_bag(500, image_bits=MEGABYTE, ref_seconds=1000.0,
                      name="imagejob")
    submission = system.provider.submit_job(job, target_size=3,
                                            heartbeat_interval_s=50.0,
                                            release_on_completion=False)
    system.sim.run(until=200.0)
    assert submission.job.name in system.control_plane.carousel.file_names
    system.provider.release(submission.instance_id)
    system.sim.run(until=400.0)
    assert submission.job.name not in \
        system.control_plane.carousel.file_names
    assert system.busy_count() == 0


def test_image_name_collision_rejected():
    from repro.core import WakeupPayload, sign_control

    system = build(n=1)
    payload = WakeupPayload(instance_id="i", image_name=CONFIG_FILE,
                            image_bits=1e5, probability=1.0)
    with pytest.raises(OddCIError):
        system.control_plane.publish_wakeup(
            payload, sign_control(system.controller.key, payload))


def test_unknown_stb_factory_rejected():
    system = build(n=1)
    from repro.dtv.receiver import SetTopBox

    ghost = SetTopBox(system.sim, "ghost")
    with pytest.raises(OddCIError):
        system._make_xlet(system.sim, ghost)


def test_heartbeats_flow_from_dtv_pnas():
    system = build(n=3)
    system.sim.run(until=300.0)
    assert system.controller.counters["heartbeats"] > 0
    assert len(system.controller.registry) == 3
