"""Unit tests for the broadcast channel."""

import pytest

from repro.errors import ConfigurationError
from repro.net import DEFAULT_HEADER_BITS, BroadcastChannel, Message, mbps
from repro.sim import Simulator


def make_msg(bits: float) -> Message:
    return Message(sender="controller", payload_bits=bits)


def test_airtime():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1e6)
    assert ch.airtime(1e6) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        ch.airtime(-1)


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        BroadcastChannel(sim, beta_bps=0)


def test_delivery_simultaneous_to_all_listeners():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1000.0)
    arrivals = []
    for tag in range(5):
        ch.subscribe(lambda msg, tag=tag: arrivals.append((tag, sim.now)))
    msg = make_msg(1000.0 - DEFAULT_HEADER_BITS)
    sim.run_until_event(ch.transmit(msg))
    assert arrivals == [(t, 1.0) for t in range(5)]


def test_fifo_multiplexing():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1000.0)
    times = []
    ch.subscribe(lambda msg: times.append(sim.now))
    ch.transmit(make_msg(1000.0 - DEFAULT_HEADER_BITS))
    ch.transmit(make_msg(2000.0 - DEFAULT_HEADER_BITS))
    sim.run()
    assert times == [1.0, 3.0]
    assert ch.transmissions == 2


def test_subscriber_joining_after_delivery_misses_message():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1e6)
    late_arrivals = []
    ch.transmit(make_msg(1e6))  # delivered ~t=1
    sim.schedule(2.0, lambda: ch.subscribe(
        lambda msg: late_arrivals.append(sim.now)))
    sim.run()
    assert late_arrivals == []


def test_unsubscribe_stops_delivery():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1e6)
    seen = []
    token = ch.subscribe(lambda msg: seen.append(msg))
    ch.unsubscribe(token)
    ch.unsubscribe(token)  # idempotent
    sim.run_until_event(ch.transmit(make_msg(10)))
    assert seen == []
    assert ch.listener_count == 0


def test_listener_can_unsubscribe_during_delivery():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1e6)
    seen = []
    token_holder = {}

    def listener(msg):
        seen.append(msg)
        ch.unsubscribe(token_holder["t"])

    token_holder["t"] = ch.subscribe(listener)
    sim.run_until_event(ch.transmit(make_msg(10)))
    sim.run_until_event(ch.transmit(make_msg(10)))
    assert len(seen) == 1


def test_bits_sent_and_busy_until():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=mbps(1))
    msg = make_msg(1_000_000 - DEFAULT_HEADER_BITS)
    ch.transmit(msg)
    assert ch.busy_until == pytest.approx(1.0)
    assert ch.bits_sent == msg.size_bits
    sim.run()
