"""Unit tests for point-to-point links (direct channels)."""

import pytest

from repro.errors import ConfigurationError, LinkDownError, NetworkError
from repro.net import DEFAULT_HEADER_BITS, DuplexChannel, Link, Message, kbps, mbps
from repro.sim import Simulator


def make_msg(bits: float) -> Message:
    return Message(sender="a", recipient="b", payload_bits=bits)


def test_rate_helpers():
    assert kbps(150) == 150_000.0
    assert mbps(1) == 1_000_000.0


def test_transfer_completes_after_serialization_plus_latency():
    sim = Simulator()
    link = Link(sim, rate_bps=1000.0, latency_s=0.5)
    msg = make_msg(1000.0 - DEFAULT_HEADER_BITS)  # total wire size 1000 bits
    ev = link.send(msg)
    sim.run_until_event(ev)
    assert sim.now == pytest.approx(1.0 + 0.5)


def test_fifo_serialization_queues_messages():
    sim = Simulator()
    link = Link(sim, rate_bps=1000.0)
    m1 = make_msg(1000.0 - DEFAULT_HEADER_BITS)
    m2 = make_msg(1000.0 - DEFAULT_HEADER_BITS)
    e1 = link.send(m1)
    e2 = link.send(m2)
    sim.run_until_event(e2)
    assert e1.triggered
    assert sim.now == pytest.approx(2.0)  # serialized back to back


def test_receiver_callback_invoked_on_delivery():
    sim = Simulator()
    link = Link(sim, rate_bps=1e6)
    seen = []
    link.attach(seen.append)
    msg = make_msg(100)
    sim.run_until_event(link.send(msg))
    assert seen == [msg]
    assert link.delivered == 1


def test_down_link_fails_send():
    sim = Simulator()
    link = Link(sim, rate_bps=1e6)
    link.set_up(False)
    ev = link.send(make_msg(10))
    with pytest.raises(LinkDownError):
        sim.run_until_event(ev)
    link.set_up(True)
    sim.run_until_event(link.send(make_msg(10)))  # works again


def test_loss_drops_silently_by_default():
    sim = Simulator(seed=42)
    link = Link(sim, rate_bps=1e6, loss=0.999999)
    ev = link.send(make_msg(10))
    sim.run()
    assert not ev.triggered
    assert link.dropped == 1
    assert link.delivered == 0


def test_loss_fails_event_when_requested():
    sim = Simulator(seed=42)
    link = Link(sim, rate_bps=1e6, loss=0.999999)
    ev = link.send(make_msg(10), fail_on_loss=True)
    with pytest.raises(LinkDownError):
        sim.run_until_event(ev)


def test_loss_rate_statistics():
    sim = Simulator(seed=7)
    link = Link(sim, rate_bps=1e9, loss=0.3)
    n = 2000
    for _ in range(n):
        link.send(make_msg(8))
    sim.run()
    observed = link.dropped / n
    assert 0.25 < observed < 0.35


def test_transfer_time_helper():
    sim = Simulator()
    link = Link(sim, rate_bps=1000.0, latency_s=0.25)
    assert link.transfer_time(500.0) == pytest.approx(0.75)
    with pytest.raises(NetworkError):
        link.transfer_time(-1)


def test_bits_sent_accounting():
    sim = Simulator()
    link = Link(sim, rate_bps=1e6)
    msg = make_msg(1000)
    sim.run_until_event(link.send(msg))
    assert link.bits_sent == msg.size_bits


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Link(sim, rate_bps=0)
    with pytest.raises(ConfigurationError):
        Link(sim, rate_bps=1e6, latency_s=-1)
    with pytest.raises(ConfigurationError):
        Link(sim, rate_bps=1e6, loss=1.0)


def test_duplex_channel_independent_directions():
    sim = Simulator()
    ch = DuplexChannel(sim, rate_bps=1000.0)
    up_done = ch.uplink.send(make_msg(1000.0 - DEFAULT_HEADER_BITS))
    down_done = ch.downlink.send(make_msg(1000.0 - DEFAULT_HEADER_BITS))
    sim.run_until_event(sim.all_of([up_done, down_done]))
    # Full duplex: both directions complete at t=1, not t=2.
    assert sim.now == pytest.approx(1.0)


def test_duplex_set_up_affects_both():
    sim = Simulator()
    ch = DuplexChannel(sim, rate_bps=1e6)
    assert ch.up
    ch.set_up(False)
    assert not ch.uplink.up and not ch.downlink.up and not ch.up
