"""Unit tests for message types and size conversions."""

import pytest

from repro.errors import ConfigurationError
from repro.net import (
    DEFAULT_HEADER_BITS,
    KILOBYTE,
    MEGABYTE,
    Message,
    bits_from_bytes,
    bytes_from_bits,
)


def test_bits_bytes_roundtrip():
    assert bits_from_bytes(100) == 800.0
    assert bytes_from_bits(800) == 100.0
    assert bytes_from_bits(bits_from_bytes(12345)) == 12345.0


def test_unit_constants():
    assert KILOBYTE == 8192
    assert MEGABYTE == 1024 * 1024 * 8


def test_negative_sizes_rejected():
    with pytest.raises(ConfigurationError):
        bits_from_bytes(-1)
    with pytest.raises(ConfigurationError):
        bytes_from_bits(-1)


def test_message_total_size_includes_header():
    msg = Message(sender="a", recipient="b", payload_bits=1000)
    assert msg.size_bits == 1000 + DEFAULT_HEADER_BITS


def test_message_ids_unique_and_increasing():
    a = Message()
    b = Message()
    assert b.msg_id > a.msg_id


def test_message_negative_payload_rejected():
    with pytest.raises(ConfigurationError):
        Message(payload_bits=-5)


def test_message_stamped():
    msg = Message().stamped(12.5)
    assert msg.created_at == 12.5


def test_message_defaults_are_broadcast():
    msg = Message(sender="ctrl")
    assert msg.recipient == "*"
    assert msg.payload is None
