"""Unit tests for the simulated signature mechanism."""

import pytest

from repro.errors import SignatureError
from repro.net import KeyRegistry, canonicalize, sign, verify


def test_sign_verify_roundtrip():
    reg = KeyRegistry()
    key = reg.issue("controller-1")
    fields = {"type": "wakeup", "instance": "i-1", "probability": 0.5}
    tag = sign(key, fields)
    assert verify(key, fields, tag)


def test_tampered_fields_fail():
    reg = KeyRegistry()
    key = reg.issue("c")
    fields = {"type": "wakeup", "instance": "i-1"}
    tag = sign(key, fields)
    assert not verify(key, {"type": "wakeup", "instance": "i-2"}, tag)


def test_wrong_key_fails():
    reg = KeyRegistry()
    k1 = reg.issue("controller-1")
    k2 = reg.issue("controller-2")
    fields = {"type": "reset"}
    tag = sign(k1, fields)
    assert not verify(k2, fields, tag)


def test_issue_is_idempotent_per_owner():
    reg = KeyRegistry()
    assert reg.issue("c") == reg.issue("c")


def test_distinct_owners_distinct_keys():
    reg = KeyRegistry()
    assert reg.issue("a") != reg.issue("b")


def test_key_of_unknown_owner_raises():
    reg = KeyRegistry()
    with pytest.raises(SignatureError):
        reg.key_of("ghost")


def test_key_of_returns_issued_key():
    reg = KeyRegistry()
    key = reg.issue("x")
    assert reg.key_of("x") == key
    assert reg.owners() == ("x",)


def test_empty_key_rejected():
    with pytest.raises(SignatureError):
        sign(b"", {"a": 1})
    with pytest.raises(SignatureError):
        verify(b"", {"a": 1}, b"tag")


def test_canonicalize_order_independent():
    assert canonicalize({"b": 1, "a": 2}) == canonicalize({"a": 2, "b": 1})


def test_canonicalize_distinguishes_values():
    assert canonicalize({"a": 1}) != canonicalize({"a": 2})


def test_canonicalize_nested_structures():
    fields = {"list": [1, 2, {"x": 0.5}], "bytes": b"\x01\x02"}
    rendering = canonicalize(fields)
    assert b"0102" in rendering
    assert canonicalize(fields) == rendering  # stable


def test_truncated_tag_fails():
    reg = KeyRegistry()
    key = reg.issue("c")
    tag = sign(key, {"t": "x"})
    assert not verify(key, {"t": "x"}, tag[:-1])
