"""Tests for vectorised population sampling of wakeup latencies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carousel import (
    CarouselFile,
    CarouselSchedule,
    SectionFormat,
    sample_read_times,
    sample_wakeup_latencies,
)
from repro.errors import CarouselError

RAW = SectionFormat(block_payload_bytes=10**9, section_overhead_bytes=0,
                    control_overhead_bytes=0)


def single_file_schedule(image_bits=1_000_000.0, beta=1_000_000.0):
    return CarouselSchedule(
        [CarouselFile(name="image", size_bits=image_bits)],
        beta, section_format=RAW)


def test_sample_read_times_matches_schedule():
    sched = single_file_schedule()
    ts = np.array([0.0, 0.25, 0.5, 1.0, 1.75])
    out = sample_read_times(sched, "image", ts)
    expected = [sched.completion_time("image", float(t)) for t in ts]
    assert np.allclose(out, expected)


def test_sample_read_times_requires_1d():
    sched = single_file_schedule()
    with pytest.raises(CarouselError):
        sample_read_times(sched, "image", np.zeros((2, 2)))


def test_wakeup_sample_mean_converges_to_prediction():
    sched = single_file_schedule()
    rng = np.random.default_rng(42)
    sample = sample_wakeup_latencies(sched, "image", 200_000, rng)
    assert sample.n == 200_000
    assert sample.predicted_mean == pytest.approx(1.5 * sched.cycle_time)
    assert sample.mean == pytest.approx(sample.predicted_mean, rel=0.01)


def test_wakeup_sample_bounds_single_file():
    sched = single_file_schedule()
    rng = np.random.default_rng(0)
    sample = sample_wakeup_latencies(sched, "image", 10_000, rng)
    # Latency in (duration, duration + cycle] == (cycle, 2*cycle] here.
    assert sample.minimum >= sched.cycle_time - 1e-9
    assert sample.maximum <= 2 * sched.cycle_time + 1e-9


def test_wakeup_sample_resume_policy_constant_one_cycle():
    sched = single_file_schedule()
    rng = np.random.default_rng(0)
    sample = sample_wakeup_latencies(sched, "image", 1000, rng,
                                     policy="resume")
    # Single-file carousel with resume: exactly one cycle for everyone.
    assert np.allclose(sample.latencies, sched.cycle_time)


def test_wakeup_sample_percentiles():
    sched = single_file_schedule()
    rng = np.random.default_rng(1)
    sample = sample_wakeup_latencies(sched, "image", 50_000, rng)
    p50 = sample.percentile(50)
    assert sched.cycle_time < p50 < 2 * sched.cycle_time


def test_wakeup_sample_validation():
    sched = single_file_schedule()
    rng = np.random.default_rng(0)
    with pytest.raises(CarouselError):
        sample_wakeup_latencies(sched, "image", 0, rng)
    with pytest.raises(CarouselError):
        sample_wakeup_latencies(sched, "image", 10, rng, policy="bogus")
    with pytest.raises(CarouselError):
        sample_wakeup_latencies(sched, "image", 10, rng, window_cycles=0)


def test_scales_to_a_million_receivers():
    """Requirement I smoke test: 10^6 receivers sampled in one call."""
    sched = single_file_schedule(image_bits=8 * 1024 * 1024 * 8,
                                 beta=1_000_000.0)
    rng = np.random.default_rng(7)
    sample = sample_wakeup_latencies(sched, "image", 1_000_000, rng)
    assert sample.n == 1_000_000
    assert sample.mean == pytest.approx(sample.predicted_mean, rel=0.01)


@given(
    image_mb=st.floats(min_value=0.5, max_value=32.0),
    beta_mbps=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=30, deadline=None)
def test_property_mean_latency_scales_as_1_5_I_over_beta(image_mb, beta_mbps):
    image_bits = image_mb * 1024 * 1024 * 8
    beta = beta_mbps * 1e6
    sched = CarouselSchedule(
        [CarouselFile(name="image", size_bits=image_bits)],
        beta, section_format=RAW)
    rng = np.random.default_rng(0)
    sample = sample_wakeup_latencies(sched, "image", 20_000, rng)
    w = 1.5 * image_bits / beta
    assert sample.mean == pytest.approx(w, rel=0.05)
