"""Unit + property tests for the analytic carousel schedule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carousel import CarouselFile, CarouselSchedule, SectionFormat
from repro.errors import CarouselError, FileNotInCarouselError

# A lossless format: wire == payload, no control sections — makes hand
# calculations exact.
RAW = SectionFormat(block_payload_bytes=10**9, section_overhead_bytes=0,
                    control_overhead_bytes=0)


def simple_schedule(beta=100.0):
    files = [
        CarouselFile(name="pna", size_bits=100.0),
        CarouselFile(name="image", size_bits=300.0),
        CarouselFile(name="config", size_bits=100.0),
    ]
    return CarouselSchedule(files, beta, section_format=RAW)


def test_cycle_time_is_sum_of_windows():
    sched = simple_schedule(beta=100.0)
    assert sched.cycle_time == pytest.approx(5.0)  # 500 bits / 100 bps
    assert sched.window("pna") == (0.0, 1.0)
    assert sched.window("image") == (1.0, 3.0)
    assert sched.window("config") == (4.0, 1.0)


def test_unknown_file_raises():
    sched = simple_schedule()
    with pytest.raises(FileNotInCarouselError):
        sched.window("ghost")
    with pytest.raises(FileNotInCarouselError):
        sched.file("ghost")
    assert sched.file("image").size_bits == 300.0


def test_duplicate_names_rejected():
    files = [CarouselFile(name="a", size_bits=1.0)] * 2
    with pytest.raises(CarouselError):
        CarouselSchedule(files, 100.0, section_format=RAW)


def test_empty_carousel_rejected():
    with pytest.raises(CarouselError):
        CarouselSchedule([], 100.0)


def test_next_start_basic():
    sched = simple_schedule()
    # image window starts at offset 1 within each 5-second cycle
    assert sched.next_start("image", 0.0) == pytest.approx(1.0)
    assert sched.next_start("image", 1.0) == pytest.approx(1.0)
    assert sched.next_start("image", 1.1) == pytest.approx(6.0)
    assert sched.next_start("image", 5.0) == pytest.approx(6.0)


def test_next_start_vectorised_matches_scalar():
    sched = simple_schedule()
    ts = np.linspace(0.0, 20.0, 41)
    vec = sched.next_start("image", ts)
    scalars = [sched.next_start("image", float(t)) for t in ts]
    assert np.allclose(vec, scalars)


def test_request_before_origin_rejected():
    files = [CarouselFile(name="a", size_bits=1.0)]
    sched = CarouselSchedule(files, 1.0, section_format=RAW, origin_time=10.0)
    with pytest.raises(CarouselError):
        sched.next_start("a", 5.0)


def test_completion_wait_for_start():
    sched = simple_schedule()
    # Request at t=0: image starts at 1, reads for 3 -> completes at 4.
    assert sched.completion_time("image", 0.0) == pytest.approx(4.0)
    # Request at t=2 (mid-window): wait for next start at 6, done at 9.
    assert sched.completion_time("image", 2.0) == pytest.approx(9.0)


def test_completion_resume_mid_window_takes_one_cycle():
    sched = simple_schedule()
    # Mid-window request resumes block collection: exactly one cycle.
    assert sched.completion_time("image", 2.0, policy="resume") == \
        pytest.approx(7.0)
    # Outside the window, resume == wait_for_start.
    assert sched.completion_time("image", 0.0, policy="resume") == \
        pytest.approx(4.0)


def test_unknown_policy_rejected():
    sched = simple_schedule()
    with pytest.raises(CarouselError):
        sched.completion_time("image", 0.0, policy="magic")
    with pytest.raises(CarouselError):
        sched.mean_read_time("image", policy="magic")


def test_single_file_carousel_paper_w_formula():
    """When the image is the whole carousel, W = 1.5 * I / beta."""
    image_bits = 8.0 * 1024 * 1024 * 8  # 8 MB
    beta = 1_000_000.0
    sched = CarouselSchedule(
        [CarouselFile(name="image", size_bits=image_bits)],
        beta, section_format=RAW)
    expected = 1.5 * image_bits / beta
    assert sched.mean_read_time("image") == pytest.approx(expected)


def test_mean_read_time_resume_single_file_is_one_cycle():
    sched = CarouselSchedule(
        [CarouselFile(name="image", size_bits=1000.0)], 100.0,
        section_format=RAW)
    # resume: every phase completes in exactly one cycle
    assert sched.mean_read_time("image", policy="resume") == \
        pytest.approx(sched.cycle_time)


@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1,
                   max_size=6),
    beta=st.floats(min_value=1.0, max_value=1e7),
    t=st.floats(min_value=0.0, max_value=1e6),
    which=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=200, deadline=None)
def test_property_completion_bounds(sizes, beta, t, which):
    """Completion always lies in (t, t + cycle + duration]; latency of the
    wait_for_start policy is in (duration, cycle + duration]."""
    files = [CarouselFile(name=f"f{i}", size_bits=s)
             for i, s in enumerate(sizes)]
    sched = CarouselSchedule(files, beta, section_format=RAW)
    name = f"f{which % len(sizes)}"
    _, duration = sched.window(name)
    done = sched.completion_time(name, t)
    latency = done - t
    assert latency >= duration - 1e-9
    assert latency <= sched.cycle_time + duration + 1e-6


@given(
    t=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=100, deadline=None)
def test_property_resume_never_slower_than_wait_for_start(t):
    sched = simple_schedule()
    wait = sched.completion_time("image", t)
    resume = sched.completion_time("image", t, policy="resume")
    assert resume <= wait + 1e-9
