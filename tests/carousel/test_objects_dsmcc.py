"""Unit tests for carousel files and DSM-CC overhead."""

import pytest

from repro.carousel import DEFAULT_SECTION_FORMAT, CarouselFile, SectionFormat
from repro.errors import CarouselError
from repro.net import bits_from_bytes


# -- CarouselFile --------------------------------------------------------------

def test_file_requires_name_and_positive_size():
    with pytest.raises(CarouselError):
        CarouselFile(name="", size_bits=10)
    with pytest.raises(CarouselError):
        CarouselFile(name="f", size_bits=0)
    with pytest.raises(CarouselError):
        CarouselFile(name="f", size_bits=10, version=0)


def test_file_bumped_increments_version():
    f = CarouselFile(name="image", size_bits=100.0)
    g = f.bumped()
    assert g.version == 2 and g.size_bits == 100.0 and g.name == "image"
    h = g.bumped(new_size_bits=50.0)
    assert h.version == 3 and h.size_bits == 50.0


def test_file_metadata_not_part_of_equality():
    a = CarouselFile(name="x", size_bits=1.0, metadata={"k": 1})
    b = CarouselFile(name="x", size_bits=1.0, metadata={"k": 2})
    assert a == b


# -- SectionFormat ----------------------------------------------------------------

def test_sections_for_counts_blocks():
    fmt = SectionFormat(block_payload_bytes=100, section_overhead_bytes=10)
    assert fmt.sections_for(bits_from_bytes(100)) == 1
    assert fmt.sections_for(bits_from_bytes(101)) == 2
    assert fmt.sections_for(bits_from_bytes(250)) == 3
    assert fmt.sections_for(0) == 1  # empty file still needs one section


def test_wire_bits_adds_per_section_overhead():
    fmt = SectionFormat(block_payload_bytes=100, section_overhead_bytes=10,
                        control_overhead_bytes=0)
    payload = bits_from_bytes(250)
    assert fmt.wire_bits(payload) == payload + bits_from_bytes(30)


def test_overhead_ratio_small_for_large_files():
    payload = bits_from_bytes(8 * 1024 * 1024)  # 8 MB image
    ratio = DEFAULT_SECTION_FORMAT.overhead_ratio(payload)
    assert 1.0 < ratio < 1.01  # paper's "negligible" claim holds (<1%)


def test_overhead_ratio_requires_positive_payload():
    with pytest.raises(CarouselError):
        DEFAULT_SECTION_FORMAT.overhead_ratio(0)


def test_negative_payload_rejected():
    with pytest.raises(CarouselError):
        DEFAULT_SECTION_FORMAT.sections_for(-1)


def test_invalid_format_parameters():
    with pytest.raises(CarouselError):
        SectionFormat(block_payload_bytes=0)
    with pytest.raises(CarouselError):
        SectionFormat(section_overhead_bytes=-1)
    with pytest.raises(CarouselError):
        SectionFormat(control_overhead_bytes=-1)


def test_cycle_control_bits():
    fmt = SectionFormat(control_overhead_bytes=512)
    assert fmt.cycle_control_bits() == bits_from_bytes(512)
