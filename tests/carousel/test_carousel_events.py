"""Event-driven carousel tests, incl. cross-validation vs the schedule."""

import numpy as np
import pytest

from repro.carousel import (
    CarouselFile,
    CarouselSchedule,
    ObjectCarousel,
    SectionFormat,
)
from repro.errors import CarouselError, FileNotInCarouselError
from repro.net import DEFAULT_HEADER_BITS, BroadcastChannel
from repro.sim import Simulator

RAW = SectionFormat(block_payload_bytes=10**9, section_overhead_bytes=0,
                    control_overhead_bytes=DEFAULT_HEADER_BITS // 8)
# control_overhead equals one message header so the event carousel's
# control message has zero extra payload: wire timing matches the schedule.


def build(beta=1000.0, sizes=(2000.0, 6000.0, 2000.0)):
    sim = Simulator(seed=1)
    channel = BroadcastChannel(sim, beta_bps=beta)
    files = [
        CarouselFile(name="pna", size_bits=sizes[0] - DEFAULT_HEADER_BITS),
        CarouselFile(name="image", size_bits=sizes[1] - DEFAULT_HEADER_BITS),
        CarouselFile(name="config", size_bits=sizes[2] - DEFAULT_HEADER_BITS),
    ]
    carousel = ObjectCarousel(sim, channel, files, section_format=RAW)
    return sim, channel, carousel, files


def test_empty_carousel_rejected():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1.0)
    with pytest.raises(CarouselError):
        ObjectCarousel(sim, ch, [])


def test_duplicate_files_rejected():
    sim = Simulator()
    ch = BroadcastChannel(sim, beta_bps=1.0)
    f = CarouselFile(name="a", size_bits=1.0)
    with pytest.raises(CarouselError):
        ObjectCarousel(sim, ch, [f, f])


def test_read_unknown_file_raises():
    sim, _, carousel, _ = build()
    with pytest.raises(FileNotInCarouselError):
        carousel.read("ghost")


def test_read_completes_with_file_value():
    sim, _, carousel, files = build()
    ev = carousel.read("image")
    got = sim.run_until_event(ev, limit=100.0)
    assert got.name == "image"
    assert got.version == 1
    carousel.stop()


def test_cyclic_retransmission_counts_cycles():
    sim, _, carousel, _ = build(beta=10_000.0)
    # one cycle = (control 512 + files 2000+6000+2000 wire bits) / 10 kbps
    # ~= 1.05 s
    sim.run(until=10.0)
    assert carousel.cycles_completed >= 2
    carousel.stop()
    sim.run(until=20.0)
    cycles = carousel.cycles_completed
    sim_after = carousel.cycles_completed
    assert sim_after == cycles  # stopped: no more cycles


def test_event_carousel_matches_analytic_schedule():
    """Reads issued at varied times complete exactly when the analytic
    schedule predicts (dedicated channel)."""
    sim, channel, carousel, files = build(beta=1000.0)
    sched = carousel.schedule_snapshot(origin_time=0.0)
    request_times = [0.0, 0.3, 0.9, 1.7, 2.5, 3.3]
    completions = {}

    def request(name, t):
        def fire():
            ev = carousel.read(name)
            ev.add_callback(
                lambda e: completions.__setitem__((name, t), sim.now))
        sim.schedule_at(t, fire)

    for t in request_times:
        request("image", t)
        request("config", t)
    sim.run(until=30.0)
    carousel.stop()
    for (name, t), actual in completions.items():
        predicted = sched.completion_time(name, t)
        assert actual == pytest.approx(predicted, abs=1e-9), (name, t)
    assert len(completions) == 2 * len(request_times)


def test_update_file_applies_next_cycle_and_bumps_version():
    sim, _, carousel, _ = build()
    first = carousel.read("image")
    sim.run_until_event(first, limit=100.0)
    carousel.update_file("image")
    # A read issued now gets the *new* version once the next cycle starts.
    second = carousel.read("image")
    got = sim.run_until_event(second, limit=100.0)
    assert got.version == 2
    assert carousel.current_file("image").version == 2
    carousel.stop()


def test_update_unknown_file_raises():
    sim, _, carousel, _ = build()
    with pytest.raises(FileNotInCarouselError):
        carousel.update_file("ghost")


def test_add_and_remove_file():
    sim, _, carousel, _ = build()
    extra = CarouselFile(name="extra", size_bits=100.0)
    carousel.add_file(extra)
    with pytest.raises(CarouselError):
        carousel.add_file(extra)
    ev = carousel.read("extra")
    got = sim.run_until_event(ev, limit=100.0)
    assert got.name == "extra"
    carousel.remove_file("extra")
    sim.run(until=sim.now + 10.0)
    assert "extra" not in carousel.file_names
    with pytest.raises(FileNotInCarouselError):
        carousel.remove_file("never-there")
    carousel.stop()


def test_update_grows_cycle_time():
    sim, _, carousel, _ = build()
    sched_before = carousel.schedule_snapshot(0.0)
    carousel.update_file("image", new_size_bits=50_000.0)
    sim.run(until=20.0)
    sched_after = carousel.schedule_snapshot(0.0)
    assert sched_after.cycle_time > sched_before.cycle_time
    carousel.stop()


def test_wakeup_latency_mean_approaches_1_5_cycles_single_file():
    """Event-driven single-file carousel: empirical mean read latency over
    uniform request phases ~ 1.5 cycles (paper Section 5.1)."""
    sim = Simulator(seed=3)
    channel = BroadcastChannel(sim, beta_bps=1000.0)
    image = CarouselFile(name="image", size_bits=10_000.0 - DEFAULT_HEADER_BITS)
    carousel = ObjectCarousel(sim, channel, [image], section_format=RAW)
    sched = carousel.schedule_snapshot(0.0)
    cycle = sched.cycle_time
    rng = np.random.default_rng(0)
    latencies = []
    for t in rng.uniform(0.0, 5 * cycle, size=120):
        def fire(t=t):
            ev = carousel.read("image")
            ev.add_callback(lambda e, t=t: latencies.append(sim.now - t))
        sim.schedule_at(float(t), fire)
    sim.run(until=20 * cycle)
    carousel.stop()
    assert len(latencies) == 120
    mean = float(np.mean(latencies))
    image_airtime = sched.window("image")[1]
    # image airtime dominates the cycle; expect ~ cycle/2 + airtime
    expected = cycle / 2 + image_airtime
    assert mean == pytest.approx(expected, rel=0.15)
