"""Carousel fast-forward: parked cycles are arithmetic, reads are exact.

The fast-forward carousel must be *observationally identical* to the
always-transmitting one: same read completion times (the analytic
schedule's predictions), same cycle counts, same update semantics — it
just stops burning calendar entries while nobody is listening.
"""

import pytest

from repro.carousel import CarouselFile, ObjectCarousel, SectionFormat
from repro.net import DEFAULT_HEADER_BITS, BroadcastChannel
from repro.sim import Simulator

RAW = SectionFormat(block_payload_bytes=10**9, section_overhead_bytes=0,
                    control_overhead_bytes=DEFAULT_HEADER_BITS // 8)


def build(fast_forward, beta=1000.0, sizes=(2000.0, 6000.0, 2000.0)):
    sim = Simulator(seed=1)
    channel = BroadcastChannel(sim, beta_bps=beta)
    files = [
        CarouselFile(name="pna", size_bits=sizes[0] - DEFAULT_HEADER_BITS),
        CarouselFile(name="image", size_bits=sizes[1] - DEFAULT_HEADER_BITS),
        CarouselFile(name="config", size_bits=sizes[2] - DEFAULT_HEADER_BITS),
    ]
    carousel = ObjectCarousel(sim, channel, files, section_format=RAW,
                              fast_forward=fast_forward)
    return sim, channel, carousel


def test_parked_carousel_counts_cycles_arithmetically():
    sim, channel, carousel = build(fast_forward=True)
    cycle = carousel.schedule_snapshot(0.0).cycle_time
    sim.run(until=10.5 * cycle)
    assert carousel.cycles_completed == 10
    # ...without transmitting anything.
    assert channel.transmissions == 0
    carousel.stop()


def test_read_completions_match_analytic_schedule_exactly():
    """Reads at arbitrary phases complete at exactly the instants the
    analytic schedule predicts, as if the carousel had never parked."""
    results = {}
    for ff in (False, True):
        sim, _, carousel = build(fast_forward=ff)
        sched = carousel.schedule_snapshot(0.0)
        completions = {}

        def request(name, t, sim=sim, carousel=carousel,
                    completions=completions):
            def fire():
                ev = carousel.read(name)
                ev.add_callback(
                    lambda e: completions.__setitem__((name, t), sim.now))
            sim.schedule_at(t, fire)

        request_times = [0.0, 0.3, 7.9, 31.7, 32.5, 123.3]
        for t in request_times:
            request("image", t)
            request("config", t)
        sim.run(until=200.0)
        carousel.stop()
        assert len(completions) == 2 * len(request_times)
        for (name, t), actual in completions.items():
            predicted = sched.completion_time(name, t)
            assert actual == pytest.approx(predicted, abs=1e-9), (name, t, ff)
        results[ff] = completions
    assert results[False] == pytest.approx(results[True])


def test_fast_forward_uses_far_fewer_events():
    def run(ff):
        sim, channel, carousel = build(fast_forward=ff)
        sim.run(until=500.0)
        carousel.stop()
        return sim.events_executed, channel.transmissions

    busy_events, busy_tx = run(False)
    idle_events, idle_tx = run(True)
    assert busy_tx > 150  # ~47 cycles x 4 segments
    assert idle_tx == 0
    assert idle_events < busy_events / 50


def test_update_while_parked_applies_at_next_boundary():
    sim, _, carousel = build(fast_forward=True)
    cycle = carousel.schedule_snapshot(0.0).cycle_time

    def bump():
        carousel.update_file("image", new_size_bits=50_000.0)
    sim.schedule_at(3.4 * cycle, bump)
    # Just before the boundary the old version is still being carried.
    sim.run(until=3.9 * cycle)
    assert carousel.current_file("image").version == 1
    sim.run(until=4.01 * cycle)
    assert carousel.current_file("image").version == 2
    assert carousel.cycles_completed == 4
    # Cycle arithmetic continues with the *new* (longer) cycle time.
    new_cycle = carousel.schedule_snapshot(0.0).cycle_time
    assert new_cycle > cycle
    sim.run(until=4.0 * cycle + 2.5 * new_cycle)
    assert carousel.cycles_completed == 6
    carousel.stop()


def test_read_after_update_sees_new_version():
    sim, _, carousel = build(fast_forward=True)
    cycle = carousel.schedule_snapshot(0.0).cycle_time
    got = []

    def bump():
        carousel.update_file("image")

    def request():
        carousel.read("image").add_callback(lambda e: got.append(e.value))

    sim.schedule_at(1.5 * cycle, bump)
    sim.schedule_at(5.0 * cycle, request)
    sim.run(until=20 * cycle)
    carousel.stop()
    assert len(got) == 1 and got[0].version == 2


def test_stop_while_parked_materializes_cycles():
    sim, _, carousel = build(fast_forward=True)
    cycle = carousel.schedule_snapshot(0.0).cycle_time

    def halt():
        carousel.stop()
    sim.schedule_at(7.2 * cycle, halt)
    sim.run(until=50 * cycle)
    assert carousel.cycles_completed == 7


def test_mid_window_wake_keeps_cycle_grid():
    """A read that lands *inside* the last file's window must wait for
    the next on-grid cycle, exactly as the always-on carousel would —
    the wake must not start a fresh cycle at the request instant.

    (Single-file carousel: the file's window spans almost the whole
    cycle, so every trailing replay window is skipped on wake.)
    """
    completions = {}
    for ff in (False, True):
        sim = Simulator(seed=1)
        channel = BroadcastChannel(sim, beta_bps=1000.0)
        carousel = ObjectCarousel(
            sim, channel,
            [CarouselFile(name="only", size_bits=9000.0)],
            section_format=RAW, fast_forward=ff)
        cycle = carousel.schedule_snapshot(0.0).cycle_time
        done = []

        def request(sim=sim, carousel=carousel, done=done):
            carousel.read("only").add_callback(lambda e: done.append(sim.now))

        # 40% into cycle 12: well inside the (skipped) file window.
        sim.schedule_at(12.4 * cycle, request)
        sim.run(until=20 * cycle)
        carousel.stop()
        assert len(done) == 1
        completions[ff] = (done[0], carousel.cycles_completed)
    assert completions[True][0] == pytest.approx(completions[False][0],
                                                 abs=1e-9)
    assert completions[True][1] == completions[False][1]
