"""Tests for the Backend's dispatch-order policies (FIFO / LPT / SPT)."""

import numpy as np
import pytest

from repro.core import Backend, OddCISystem, Router
from repro.core.dve import CONTROL_PAYLOAD_BITS
from repro.core.messages import TaskRequest
from repro.errors import BackendError
from repro.net import DuplexChannel
from repro.sim import Simulator
from repro.workloads import Job, Task, lognormal_bag


def varied_job(durations):
    tasks = tuple(Task(task_id=i, input_bits=0, ref_seconds=d,
                       result_bits=0)
                  for i, d in enumerate(durations))
    return Job(image_bits=1e6, tasks=tasks)


def first_assignment_duration(scheduling, durations):
    sim = Simulator()
    router = Router(sim)
    backend = Backend(sim, varied_job(durations), router,
                      scheduling=scheduling)
    inbox = []
    ch = DuplexChannel(sim, rate_bps=1e9)
    router.register_pna("p", ch, inbox.append)
    router.send_from_pna("p", "backend",
                         TaskRequest(pna_id="p", instance_id="i"),
                         CONTROL_PAYLOAD_BITS)
    sim.run()
    return inbox[-1].payload.ref_seconds


def test_fifo_preserves_submission_order():
    assert first_assignment_duration("fifo", [3.0, 9.0, 1.0]) == 3.0


def test_lpt_dispatches_longest_first():
    assert first_assignment_duration("lpt", [3.0, 9.0, 1.0]) == 9.0


def test_spt_dispatches_shortest_first():
    assert first_assignment_duration("spt", [3.0, 9.0, 1.0]) == 1.0


def test_unknown_policy_rejected():
    sim = Simulator()
    router = Router(sim)
    with pytest.raises(BackendError):
        Backend(sim, varied_job([1.0]), router, scheduling="random")


def run_policy_makespan(scheduling, seed=0):
    system = OddCISystem(seed=seed, maintenance_interval_s=1e6)
    system.add_pnas(8, heartbeat_interval_s=1e5, dve_poll_interval_s=2.0)
    rng = np.random.default_rng(seed)
    job = lognormal_bag(64, rng, image_bits=1e6, mean_ref_seconds=30.0,
                        sigma=1.0, input_bits=0.0, result_bits=0.0)
    backend_id = f"backend-{scheduling}-{seed}"
    backend = Backend(system.sim, job, system.router,
                      backend_id=backend_id, scheduling=scheduling)
    from repro.core import InstanceSpec

    spec = InstanceSpec(target_size=8, image_name="x", image_bits=1e6,
                        backend_id=backend_id, heartbeat_interval_s=1e5)
    system.controller.create_instance(spec)
    report = system.sim.run_until_event(backend.done_event, limit=1e8)
    return report.makespan


def test_lpt_no_worse_than_fifo_on_skewed_bags():
    """LPT's classic guarantee: placing long tasks first avoids a long
    task landing last and stretching the tail."""
    wins = 0
    for seed in range(4):
        fifo = run_policy_makespan("fifo", seed=seed)
        lpt = run_policy_makespan("lpt", seed=seed)
        if lpt <= fifo + 1e-6:
            wins += 1
    assert wins >= 3  # LPT at least ties in nearly every instance
