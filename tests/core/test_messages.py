"""Unit tests for OddCI control messages and requirement matching."""

import pytest

from repro.core import (
    HeartbeatPayload,
    PNAState,
    ResetPayload,
    WakeupPayload,
    matches_requirements,
    sign_control,
    verify_control,
)
from repro.errors import OddCIError
from repro.net import KeyRegistry


def wakeup(**overrides):
    defaults = dict(instance_id="i-1", image_name="app", image_bits=1e6,
                    probability=0.5)
    defaults.update(overrides)
    return WakeupPayload(**defaults)


# -- payload validation ---------------------------------------------------------

def test_wakeup_validation():
    with pytest.raises(OddCIError):
        wakeup(instance_id="")
    with pytest.raises(OddCIError):
        wakeup(image_bits=0)
    with pytest.raises(OddCIError):
        wakeup(probability=0.0)
    with pytest.raises(OddCIError):
        wakeup(probability=1.5)
    with pytest.raises(OddCIError):
        wakeup(heartbeat_interval_s=0)
    assert wakeup(probability=1.0).probability == 1.0


def test_heartbeat_validation():
    with pytest.raises(OddCIError):
        HeartbeatPayload(pna_id="", state=PNAState.IDLE)
    with pytest.raises(OddCIError):
        HeartbeatPayload(pna_id="p", state=PNAState.BUSY)  # no instance
    hb = HeartbeatPayload(pna_id="p", state=PNAState.BUSY, instance_id="i")
    assert hb.instance_id == "i"


# -- signatures -------------------------------------------------------------------

def test_wakeup_sign_verify_roundtrip():
    reg = KeyRegistry()
    key = reg.issue("controller")
    w = wakeup()
    tag = sign_control(key, w)
    assert verify_control(key, w, tag)


def test_modified_wakeup_fails_verification():
    reg = KeyRegistry()
    key = reg.issue("controller")
    tag = sign_control(key, wakeup(probability=0.5))
    assert not verify_control(key, wakeup(probability=0.6), tag)


def test_reset_signable_wildcard():
    assert ResetPayload().signable_fields()["instance_id"] == "*"
    assert ResetPayload("i-9").signable_fields()["instance_id"] == "i-9"


def test_foreign_controller_signature_rejected():
    reg = KeyRegistry()
    k1, k2 = reg.issue("c1"), reg.issue("c2")
    w = wakeup()
    assert not verify_control(k2, w, sign_control(k1, w))


# -- requirements matching ----------------------------------------------------------

def test_empty_requirements_always_match():
    assert matches_requirements({}, {})
    assert matches_requirements({}, {"memory_mb": 256})


def test_equality_requirements():
    caps = {"middleware": "ginga", "arch": "st7109"}
    assert matches_requirements({"middleware": "ginga"}, caps)
    assert not matches_requirements({"middleware": "mhp"}, caps)
    assert not matches_requirements({"absent": 1}, caps)


def test_min_requirements():
    caps = {"memory_mb": 256}
    assert matches_requirements({"min_memory_mb": 128}, caps)
    assert matches_requirements({"min_memory_mb": 256}, caps)
    assert not matches_requirements({"min_memory_mb": 512}, caps)
    assert not matches_requirements({"min_memory_mb": 1}, {})  # missing cap


def test_max_requirements():
    caps = {"load": 0.4}
    assert matches_requirements({"max_load": 0.5}, caps)
    assert not matches_requirements({"max_load": 0.3}, caps)


def test_non_numeric_min_requirement_fails():
    assert not matches_requirements({"min_memory_mb": 128},
                                    {"memory_mb": "lots"})


def test_combined_requirements():
    caps = {"memory_mb": 256, "middleware": "ginga"}
    req = {"min_memory_mb": 128, "middleware": "ginga"}
    assert matches_requirements(req, caps)
    req["middleware"] = "mhp"
    assert not matches_requirements(req, caps)
