"""Federated control plane: shards, placement, multi-network routing."""

import pytest

from repro.core import (
    FederatedOddCISystem,
    NetworkDescriptor,
    split_target,
)
from repro.errors import ConfigurationError, ProvisioningError
from repro.faults import availability_fraction, merged_size_series
from repro.workloads import uniform_bag


def three_networks(capacity=6):
    return [
        NetworkDescriptor(name="desk", capacity=capacity,
                          cost_per_node_hour=0.5),
        NetworkDescriptor(name="dtv", capacity=capacity,
                          cost_per_node_hour=1.0),
        NetworkDescriptor(name="cell", capacity=capacity,
                          cost_per_node_hour=2.0),
    ]


def running_federation(placement="cost", capacity=6, seed=0):
    system = FederatedOddCISystem(
        three_networks(capacity), seed=seed, placement=placement,
        maintenance_interval_s=20.0)
    system.build_fleets(heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    return system


# -- descriptor & placement math ---------------------------------------------

def test_network_descriptor_validation():
    with pytest.raises(ConfigurationError):
        NetworkDescriptor(name="", capacity=4)
    with pytest.raises(ConfigurationError):
        NetworkDescriptor(name="x", capacity=0)
    with pytest.raises(ConfigurationError):
        NetworkDescriptor(name="x", capacity=4, delta_loss=1.5)
    with pytest.raises(ConfigurationError):
        NetworkDescriptor(name="x", capacity=4,
                          device_mix={"settop": 1.3})


def test_split_target_cost_fills_cheapest_first():
    entries = [("dtv", 10, 1.0), ("cell", 10, 2.0), ("desk", 10, 0.5)]
    assert split_target(7, entries, "cost") == {"desk": 7}
    assert split_target(14, entries, "cost") == {"desk": 10, "dtv": 4}
    assert split_target(25, entries, "cost") == {
        "desk": 10, "dtv": 10, "cell": 5}


def test_split_target_spread_is_proportional():
    entries = [("a", 10, 1.0), ("b", 10, 1.0), ("c", 5, 1.0)]
    shares = split_target(10, entries, "spread")
    assert sum(shares.values()) == 10
    assert shares == {"a": 4, "b": 4, "c": 2}


def test_split_target_errors():
    entries = [("a", 3, 1.0)]
    with pytest.raises(ProvisioningError):
        split_target(4, entries)          # headroom exhausted
    with pytest.raises(ProvisioningError):
        split_target(0, entries)          # nonsense target
    with pytest.raises(ConfigurationError):
        split_target(1, entries, "random")  # unknown policy


# -- shard id ranges ----------------------------------------------------------

def test_shard_id_ranges_are_contiguous_and_disjoint():
    system = running_federation()
    previous_hi = 0
    for shard in system.shards:
        lo, hi = shard.id_range
        assert lo == previous_hi
        assert hi - lo == len(shard.pnas) == 6
        assert shard.owns_index(lo)
        assert shard.owns_index(hi - 1)
        assert not shard.owns_index(hi)
        previous_hi = hi
    # One shared table covers exactly the federation's fleet.
    assert len(system.interner) == previous_hi == len(system.pnas)


# -- multi-network job routing ------------------------------------------------

def test_job_completes_with_merged_per_network_accounting():
    system = running_federation(placement="cost")
    job = uniform_bag(40, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=10, heartbeat_interval_s=10.0,
        release_on_completion=False)
    # cost placement: all of desk (6), remainder on dtv.
    assert submission.shares == {"desk": 6, "dtv": 4}
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    backend = submission.backend
    assert backend.done
    assert sum(backend.assigned_by_network.values()) == \
        backend.tasks_assigned
    assert sum(backend.completed_by_network.values()) == job.n
    assert backend.completed_by_network["desk"] > 0
    assert backend.completed_by_network["dtv"] > 0
    assert backend.completed_by_network["cell"] == 0


def test_status_and_size_series_merge_networks():
    system = running_federation(placement="spread")
    job = uniform_bag(5000, image_bits=1e6, ref_seconds=60.0)
    submission = system.provider.submit_job(
        job, target_size=9, heartbeat_interval_s=10.0)
    system.sim.run(until=120.0)
    status = system.provider.status(submission)
    assert status["target_size"] == 9
    assert set(status["networks"]) == {"desk", "dtv", "cell"}
    assert status["size"] == 9
    merged = merged_size_series(
        [s for _n, s in system.provider.size_series(submission)])
    assert merged.last() == 9
    assert availability_fraction(merged, 9, until=120.0) > 0.5
    assert system.provider.cost_estimate(submission, 120.0) > 0.0


def test_resize_recommits_and_release_evicts():
    system = running_federation(placement="spread")
    job = uniform_bag(5000, image_bits=1e6, ref_seconds=60.0)
    submission = system.provider.submit_job(
        job, target_size=9, heartbeat_interval_s=10.0,
        release_on_completion=False)
    assert sum(submission.shares.values()) == 9
    system.sim.run(until=60.0)
    shares = system.provider.resize(submission, 15)
    assert sum(shares.values()) == 15
    assert all(system.provider.committed(n) == s
               for n, s in shares.items())
    with pytest.raises(ProvisioningError):
        system.provider.resize(submission, 99)  # beyond total capacity
    system.provider.release(submission)
    assert system.provider.backends() == []
    assert all(system.provider.committed(n) == 0
               for n in ("desk", "dtv", "cell"))


def test_departure_rebalances_to_survivors_and_rejoin_restores():
    system = running_federation(placement="spread")
    job = uniform_bag(5000, image_bits=1e6, ref_seconds=60.0)
    submission = system.provider.submit_job(
        job, target_size=9, heartbeat_interval_s=10.0,
        release_on_completion=False)
    system.sim.run(until=60.0)
    system.shard("cell").depart()
    shares = system.provider.rebalance(submission)
    assert set(shares) == {"desk", "dtv"}
    assert sum(shares.values()) == 9
    system.shard("cell").rejoin()
    shares = system.provider.rebalance(submission)
    assert set(shares) == {"desk", "dtv", "cell"}
    assert sum(shares.values()) == 9
    # The retired cell instance plus its replacement both appear in the
    # accounting history (size series spans re-creations).
    cell_series = [s for n, s in system.provider.size_series(submission)
                   if n == "cell"]
    assert len(cell_series) == 2


def test_rebalance_degrades_when_survivors_cannot_seat_target():
    system = running_federation(placement="spread", capacity=4)
    job = uniform_bag(5000, image_bits=1e6, ref_seconds=60.0)
    submission = system.provider.submit_job(
        job, target_size=9, heartbeat_interval_s=10.0,
        release_on_completion=False)
    system.sim.run(until=60.0)
    system.shard("desk").depart()
    shares = system.provider.rebalance(submission)
    # Best effort: 8 of 9 seats on the two survivors, not an exception.
    assert shares == {"dtv": 4, "cell": 4}
    assert submission.target_size == 9
    system.shard("desk").rejoin()
    assert sum(system.provider.rebalance(submission).values()) == 9
