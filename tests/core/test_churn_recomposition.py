"""Churn and recomposition: the Controller repairs instances that lose
PNAs, and the Backend's leases recover lost tasks (paper Section 3.2)."""

import pytest

from repro.core import InstanceStatus, OddCISystem, PNAState
from repro.workloads import uniform_bag


def test_controller_detects_lost_members_and_recomposes():
    system = OddCISystem(seed=2, maintenance_interval_s=20.0)
    system.add_pnas(12, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(2000, image_bits=1e6, ref_seconds=200.0)
    submission = system.provider.submit_job(
        job, target_size=8, heartbeat_interval_s=10.0)
    system.sim.run(until=60.0)
    assert system.busy_count() == 8

    # Owners switch off 4 of the busy nodes (silently).
    busy = [p for p in system.pnas if p.state is PNAState.BUSY]
    for p in busy[:4]:
        p.shutdown()
    system.sim.run(until=400.0)

    record = system.controller.instance(submission.instance_id)
    # Recomposition recruited replacements from the idle pool.
    assert record.size >= 7
    assert record.wakeups_sent >= 2  # initial + at least one recomposition
    assert system.controller.counters["recompositions"] >= 1
    online_busy = [p for p in system.pnas
                   if p.online and p.state is PNAState.BUSY]
    assert len(online_busy) >= 7


def test_job_completes_despite_churn_with_leases():
    system = OddCISystem(seed=4, maintenance_interval_s=15.0)
    system.add_pnas(10, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(30, image_bits=1e6, ref_seconds=20.0)
    submission = system.provider.submit_job(
        job, target_size=6, heartbeat_interval_s=10.0, lease_factor=0.05)
    system.sim.run(until=40.0)
    # Kill half the workers mid-job.
    busy = [p for p in system.pnas if p.state is PNAState.BUSY]
    for p in busy[:3]:
        p.shutdown()
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 30
    assert report.requeues >= 1 or report.duplicates >= 0


def test_offline_pna_ignores_broadcast():
    system = OddCISystem(seed=5, maintenance_interval_s=1e6)
    system.add_pnas(5, heartbeat_interval_s=1e5)
    for p in system.pnas:
        p.shutdown()
    job = uniform_bag(10, image_bits=1e5, ref_seconds=100.0)
    system.provider.submit_job(job, target_size=5)
    system.sim.run(until=50.0)
    assert system.busy_count() == 0
    # Power back on: the next maintenance recomposition recruits them.
    for p in system.pnas:
        p.restart()
    system.controller._maintenance_round()
    system.sim.run(until=100.0)
    assert system.busy_count() == 5


def test_restarted_pna_resumes_heartbeats():
    system = OddCISystem(seed=6, maintenance_interval_s=1e6)
    system.add_pnas(1, heartbeat_interval_s=10.0)
    pna = system.pnas[0]
    system.sim.run(until=35.0)
    sent_before = pna.heartbeats_sent
    pna.shutdown()
    system.sim.run(until=70.0)
    assert pna.heartbeats_sent == sent_before  # silent while off
    pna.restart()
    system.sim.run(until=120.0)
    assert pna.heartbeats_sent > sent_before


def test_lifetime_expiry_dismantles_instance():
    system = OddCISystem(seed=8, maintenance_interval_s=10.0)
    system.add_pnas(4, heartbeat_interval_s=5.0)
    job = uniform_bag(1000, image_bits=1e5, ref_seconds=1000.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=5.0, lifetime_s=60.0)
    system.sim.run(until=30.0)
    assert system.busy_count() == 4
    system.sim.run(until=300.0)
    record = system.controller.instance(submission.instance_id)
    assert record.status in (InstanceStatus.DISMANTLING,
                             InstanceStatus.DESTROYED)
    assert system.busy_count() == 0


def test_shutdown_mid_image_fetch_stays_idle():
    """A PNA that accepts a wakeup but goes offline before staging the
    image must not end up busy (DTV-plane race)."""
    system = OddCISystem(seed=9, maintenance_interval_s=1e6)
    pna = system.add_pna(heartbeat_interval_s=1e5)

    from repro.core import WakeupPayload, sign_control

    payload = WakeupPayload(instance_id="i-x", image_name="app",
                            image_bits=1e6, probability=1.0)
    tag = sign_control(system.controller.key, payload)
    fetch_event = system.sim.event("image")
    pna.deliver_control(payload, tag, fetch_image=lambda: fetch_event)
    assert pna.state is PNAState.BUSY  # committed while staging
    pna.shutdown()
    fetch_event.succeed(None)
    system.sim.run(until=10.0)
    assert pna.state is PNAState.IDLE
    assert pna.dve is None
