"""Tests for hierarchical heartbeat aggregation (Controller-bottleneck
mitigation; the paper's footnote-3 future work)."""

import pytest

from repro.core import OddCISystem, PNAState
from repro.core.aggregation import (
    DigestingController,
    HeartbeatAggregator,
    HeartbeatDigest,
)
from repro.errors import OddCIError
from repro.workloads import uniform_bag


def build_aggregated_system(n_pnas=12, n_aggregators=3,
                            heartbeat_s=10.0, aggregation_s=20.0):
    """OddCI system whose PNAs report to aggregators, not the controller."""
    system = OddCISystem(seed=21, maintenance_interval_s=30.0)
    digesting = DigestingController(system.controller)
    aggregators = [
        HeartbeatAggregator(system.sim, system.router, f"agg-{i}",
                            system.controller.controller_id,
                            aggregation_interval_s=aggregation_s)
        for i in range(n_aggregators)
    ]
    for i in range(n_pnas):
        pna = system.add_pna(heartbeat_interval_s=heartbeat_s,
                             dve_poll_interval_s=5.0)
        # Point the PNA's heartbeats at its shard's aggregator.
        pna.controller_id = aggregators[i % n_aggregators].aggregator_id
    return system, digesting, aggregators


def test_digest_wire_size_scales_with_members():
    empty = HeartbeatDigest(aggregator_id="a", period_start=0,
                            period_end=1, idle_count=5)
    full = HeartbeatDigest(aggregator_id="a", period_start=0,
                           period_end=1, idle_count=5,
                           members={"i": tuple(f"p{k}" for k in range(10))})
    assert full.wire_bits() > empty.wire_bits()


def test_aggregators_receive_heartbeats_and_forward_digests():
    system, digesting, aggregators = build_aggregated_system()
    system.sim.run(until=100.0)
    assert all(a.heartbeats_received > 0 for a in aggregators)
    assert all(a.digests_sent > 0 for a in aggregators)
    assert digesting.digests_received > 0
    # The controller never saw a raw heartbeat.
    assert system.controller.counters["heartbeats"] == 0


def test_idle_census_comes_from_digests():
    system, digesting, aggregators = build_aggregated_system(n_pnas=9)
    system.sim.run(until=100.0)
    assert system.controller.idle_estimate() == 9


def test_job_runs_through_aggregated_control_path():
    system, digesting, aggregators = build_aggregated_system(
        n_pnas=8, heartbeat_s=5.0, aggregation_s=10.0)
    job = uniform_bag(24, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(job, target_size=8,
                                            heartbeat_interval_s=5.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 24
    # Membership tracked via digests.
    record = system.controller.instance(submission.instance_id)
    assert record.wakeups_sent >= 1


def test_message_rate_reduction():
    """The point of aggregation: controller inbound messages drop from
    one-per-PNA-heartbeat to one-per-aggregator-period."""
    # Raw: 12 PNAs, heartbeat 5 s -> 2.4 msg/s at the controller.
    raw = OddCISystem(seed=3, maintenance_interval_s=1e6)
    raw.add_pnas(12, heartbeat_interval_s=5.0)
    raw.sim.run(until=300.0)
    raw_msgs = raw.controller.counters["heartbeats"]

    # Aggregated: 3 aggregators, 20 s period -> 0.15 msg/s.
    system, digesting, aggregators = build_aggregated_system(
        n_pnas=12, n_aggregators=3, heartbeat_s=5.0, aggregation_s=20.0)
    system.sim.run(until=300.0)
    agg_msgs = digesting.digests_received

    assert agg_msgs * 10 < raw_msgs


def test_trim_flows_through_digests():
    """Pending trims must still reach PNAs when membership arrives via
    digests (reset replies use the direct channels)."""
    system, digesting, aggregators = build_aggregated_system(
        n_pnas=10, heartbeat_s=5.0, aggregation_s=10.0)
    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=500.0)
    submission = system.provider.submit_job(job, target_size=10,
                                            heartbeat_interval_s=5.0)
    system.sim.run(until=60.0)
    assert system.busy_count() == 10
    system.provider.resize(submission.instance_id, 4)
    system.sim.run(until=400.0)
    assert system.busy_count() <= 5


def test_aggregator_validation_and_shutdown():
    system = OddCISystem(seed=1)
    with pytest.raises(OddCIError):
        HeartbeatAggregator(system.sim, system.router, "a",
                            "controller", aggregation_interval_s=0)
    agg = HeartbeatAggregator(system.sim, system.router, "a", "controller")
    agg.shutdown()
    # Idempotent-ish: components unregistered, no crash on further runs.
    system.sim.run(until=200.0)
    assert agg.digests_sent == 0


def test_aggregator_rejects_garbage():
    from repro.net import Message

    system = OddCISystem(seed=1)
    agg = HeartbeatAggregator(system.sim, system.router, "a", "controller")
    with pytest.raises(OddCIError):
        agg._receive(Message(sender="x", recipient="a", payload="junk"))
