"""Census metrics are delivery-shape independent.

The Controller counts heartbeat consolidation outcomes in the
``census.*`` metric family.  Whether payloads arrive through the
batched cohort path (``_receive_batch``) or one at a time
(``_receive_payload`` / classic per-``Message`` fallback) must not
change a single census value — only the ``delivery.*`` family, which
describes the batching itself, may differ.  This is the regression
guard for the vectorised-consolidation roadmap item: any future bulk
rewrite has to preserve these numbers.
"""

import pytest

from repro.core import OddCISystem
from repro.core.messages import HeartbeatPayload, PNAState
from repro.telemetry.trace import Tracer, active
from repro.workloads import uniform_bag

CENSUS = ("census.heartbeats", "census.stale_resets", "census.trim_resets")


def _census(tracer):
    counters = tracer.metrics.snapshot()["counters"]
    return {name: counters.get(name, 0) for name in CENSUS}


def _build_system(n_pnas=6):
    system = OddCISystem(maintenance_interval_s=40.0, seed=11)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    return system


def _payload_mix(system):
    """Representative payload list: idle fleet, busy members of a live
    instance (more than fit its target, forcing trims), and busy
    payloads naming an unknown instance (stale resets)."""
    job = uniform_bag(4, image_bits=1e6, ref_seconds=1e6)
    submission = system.provider.submit_job(job, target_size=2)
    instance_id = submission.record.instance_id
    payloads = []
    for pna in system.pnas[:2]:
        payloads.append(HeartbeatPayload(pna_id=pna.pna_id,
                                         state=PNAState.IDLE,
                                         instance_id=None))
    for pna in system.pnas:
        payloads.append(HeartbeatPayload(pna_id=pna.pna_id,
                                         state=PNAState.BUSY,
                                         instance_id=instance_id))
    for pna in system.pnas[:3]:
        payloads.append(HeartbeatPayload(pna_id=pna.pna_id,
                                         state=PNAState.BUSY,
                                         instance_id="no-such-instance"))
    return payloads


def _drive(deliver):
    """Build a traced system, feed it the payload mix via ``deliver``,
    and return its census metrics."""
    tracer = Tracer("control")
    with active(tracer):
        system = _build_system()
        payloads = _payload_mix(system)
        # Arm trims so the trim path fires: shrink the instance well
        # below the members the busy payloads will claim.
        controller = system.controller
        record = next(iter(controller.instances.values()))
        controller._pending_trims[record.instance_id] = 2
        deliver(controller, payloads)
    return _census(tracer), tracer


def test_batch_and_per_payload_census_identical():
    batched, batched_tracer = _drive(
        lambda controller, payloads: controller._receive_batch(payloads))

    def one_at_a_time(controller, payloads):
        for payload in payloads:
            controller._receive_payload(payload)

    single, single_tracer = _drive(one_at_a_time)

    assert batched == single
    assert batched["census.heartbeats"] == 11
    assert batched["census.stale_resets"] == 3
    assert batched["census.trim_resets"] == 2
    # The delivery-shape family legitimately differs.
    batched_counters = batched_tracer.metrics.snapshot()["counters"]
    single_counters = single_tracer.metrics.snapshot()["counters"]
    assert batched_counters["delivery.batches"] == 1
    assert single_counters.get("delivery.batches", 0) == 0


def test_live_system_batched_vs_fallback_delivery():
    """End to end: the same simulated fleet, once with the controller's
    batch entry point active and once with it removed (forcing the
    router's per-``Message`` fallback), consolidates identical census
    metrics."""

    def run(remove_batch_receiver):
        tracer = Tracer("control")
        with active(tracer):
            system = _build_system()
            if remove_batch_receiver:
                # Both bulk entry points must go for the router to fall
                # back to per-Message delivery.
                system.router._batch_receivers.pop(
                    system.controller.controller_id)
                system.router._cohort_receivers.pop(
                    system.controller.controller_id)
            job = uniform_bag(12, image_bits=1e6, ref_seconds=20.0)
            submission = system.provider.submit_job(job, target_size=4)
            system.provider.run_job_to_completion(submission, limit_s=1e6)
            system.sim.run(until=system.sim.now + 100.0)
        return _census(tracer)

    batched = run(remove_batch_receiver=False)
    fallback = run(remove_batch_receiver=True)
    assert batched == fallback
    assert batched["census.heartbeats"] > 0


def test_cohort_vs_batch_delivery_census_identical():
    """The columnar cohort entry point and the plain batch entry point
    consolidate identical census metrics for a live fleet (the cohort
    path is the default; popping only the cohort receiver downgrades
    delivery to ``_receive_batch``)."""

    def run(remove_cohort_receiver):
        tracer = Tracer("control")
        with active(tracer):
            system = _build_system(n_pnas=24)
            if remove_cohort_receiver:
                system.router._cohort_receivers.pop(
                    system.controller.controller_id)
            job = uniform_bag(12, image_bits=1e6, ref_seconds=20.0)
            submission = system.provider.submit_job(job, target_size=4)
            system.provider.run_job_to_completion(submission, limit_s=1e6)
            system.sim.run(until=system.sim.now + 100.0)
        return _census(tracer)

    assert run(False) == run(True)


def test_metrics_enabled_trace_disabled_still_counts():
    """Satellite regression: a tracer whose *control category is off*
    must still count census metrics — the bumps gate on the metric
    objects, not on the trace channel."""
    tracer = Tracer("runner")  # control channel disabled, registry live
    with active(tracer):
        system = _build_system()
        controller = system.controller
        assert controller._trace is None
        assert controller._m_heartbeats is not None
        payloads = _payload_mix(system)
        record = next(iter(controller.instances.values()))
        controller._pending_trims[record.instance_id] = 2
        controller._receive_batch(payloads)
    census = _census(tracer)
    assert census["census.heartbeats"] == 11
    assert census["census.stale_resets"] == 3
    assert census["census.trim_resets"] == 2
    counters = tracer.metrics.snapshot()["counters"]
    assert counters["delivery.batches"] == 1
    # No control trace events were emitted (the category is off).
    assert not [e for e in tracer.events() if e[1] == "control"]


def test_untraced_controller_counts_nothing_but_still_consolidates():
    system = _build_system(n_pnas=3)
    assert system.controller._m_heartbeats is None
    system.sim.run(until=25.0)
    # Heartbeats still consolidate through the classic Counter.
    assert system.controller.counters["heartbeats"] == 3 * 2


def test_census_heartbeats_matches_classic_counter():
    tracer = Tracer("control")
    with active(tracer):
        system = _build_system(n_pnas=5)
        system.sim.run(until=35.0)
    census = _census(tracer)
    assert census["census.heartbeats"] == \
        system.controller.counters["heartbeats"] > 0
