"""Integration tests: the full OddCI lifecycle on the generic plane.

Provider -> Controller -> broadcast wakeup -> PNAs -> DVE -> Backend ->
results -> dismantle.  These tests exercise the paper's Section 3
protocol end to end.
"""

import pytest

from repro.core import (
    FixedProbability,
    InstanceSpec,
    InstanceStatus,
    OddCISystem,
    PNAState,
)
from repro.errors import InstanceError, ProvisioningError
from repro.workloads import uniform_bag


def build_system(n_pnas=10, **kwargs):
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         maintenance_interval_s=30.0, seed=7, **kwargs)
    system.add_pnas(n_pnas, heartbeat_interval_s=20.0,
                    dve_poll_interval_s=5.0)
    return system


def test_job_runs_to_completion_and_reports_makespan():
    system = build_system(n_pnas=10)
    job = uniform_bag(40, image_bits=1e6, input_bits=4096, ref_seconds=10.0,
                      result_bits=4096)
    submission = system.provider.submit_job(
        job, target_size=10, heartbeat_interval_s=20.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 40
    assert report.makespan > 0
    # 40 tasks / 10 nodes * 10 s/task = 40 s of compute minimum, plus
    # image broadcast (1 Mbit / 1 Mbps = ~1 s) and I/O.
    assert 40.0 < report.makespan < 200.0
    assert report.distinct_workers <= 10
    assert report.duplicates == 0


def test_all_pnas_busy_after_wakeup_probability_one():
    system = build_system(n_pnas=8)
    job = uniform_bag(100, image_bits=1e6, ref_seconds=50.0)
    system.provider.submit_job(job, target_size=8)
    system.sim.run(until=30.0)
    assert system.busy_count() == 8


def test_probability_gates_recruitment():
    system = OddCISystem(seed=3, maintenance_interval_s=1e6,
                         probability_policy=FixedProbability(0.5))
    system.add_pnas(200, heartbeat_interval_s=1e5)
    job = uniform_bag(10, image_bits=1e5, ref_seconds=1e5)
    system.provider.submit_job(job, target_size=100)
    system.sim.run(until=50.0)
    busy = system.busy_count()
    # Binomial(200, 0.5): overwhelmingly within [70, 130].
    assert 70 < busy < 130


def test_busy_pna_drops_second_wakeup():
    system = build_system(n_pnas=5)
    job1 = uniform_bag(50, image_bits=1e6, ref_seconds=100.0)
    system.provider.submit_job(job1, target_size=5)
    system.sim.run(until=30.0)
    assert system.busy_count() == 5
    first_instance = system.pnas[0].instance_id
    job2 = uniform_bag(10, image_bits=1e6, ref_seconds=1.0)
    system.provider.submit_job(job2, target_size=5)
    system.sim.run(until=60.0)
    # All PNAs still belong to the first instance.
    assert all(p.instance_id == first_instance for p in system.pnas)
    assert all(p.dropped_busy >= 1 for p in system.pnas)


def test_requirements_filter_recruitment():
    system = OddCISystem(seed=1, maintenance_interval_s=1e6)
    system.add_pnas(5, capabilities={"memory_mb": 256})
    system.add_pnas(5, capabilities={"memory_mb": 64})
    job = uniform_bag(10, image_bits=1e5, ref_seconds=1e4)
    job = type(job)(image_bits=job.image_bits, tasks=job.tasks,
                    name=job.name, requirements={"min_memory_mb": 128})
    system.provider.submit_job(job, target_size=10)
    system.sim.run(until=30.0)
    busy = [p for p in system.pnas if p.state is PNAState.BUSY]
    assert len(busy) == 5
    assert all(p.capabilities["memory_mb"] == 256 for p in busy)
    small = [p for p in system.pnas if p.capabilities["memory_mb"] == 64]
    assert all(p.dropped_requirements >= 1 for p in small)


def test_instance_dismantled_after_job_completion():
    system = build_system(n_pnas=6)
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(job, target_size=6)
    system.provider.run_job_to_completion(submission, limit_s=1e6)
    # After completion the provider auto-releases: reset broadcast.
    system.sim.run(until=system.sim.now + 120.0)
    assert system.busy_count() == 0
    record = system.controller.instance(submission.instance_id)
    assert record.status in (InstanceStatus.DISMANTLING,
                             InstanceStatus.DESTROYED)


def test_manual_release_resets_pnas():
    system = build_system(n_pnas=4)
    job = uniform_bag(100, image_bits=1e6, ref_seconds=1000.0)
    submission = system.provider.submit_job(job, target_size=4,
                                            release_on_completion=False)
    system.sim.run(until=30.0)
    assert system.busy_count() == 4
    system.provider.release(submission.instance_id)
    system.sim.run(until=60.0)
    assert system.busy_count() == 0
    assert all(p.resets_handled >= 1 for p in system.pnas)


def test_heartbeats_reach_controller():
    system = build_system(n_pnas=3)
    system.sim.run(until=100.0)
    assert system.controller.counters["heartbeats"] > 0
    assert len(system.controller.registry) == 3
    assert system.controller.idle_estimate() == 3


def test_forged_wakeup_rejected():
    """A wakeup signed by a different controller is dropped by PNAs."""
    from repro.core import WakeupPayload, sign_control
    from repro.net import Message

    system = build_system(n_pnas=4)
    rogue_key = system.keys.issue("rogue")
    payload = WakeupPayload(instance_id="evil", image_name="evil",
                            image_bits=1e5, probability=1.0)
    tag = sign_control(rogue_key, payload)
    system.broadcast.transmit(Message(sender="rogue",
                                      payload=(payload, tag),
                                      payload_bits=1e5))
    system.sim.run(until=30.0)
    assert system.busy_count() == 0
    assert sum(p.dropped_bad_signature for p in system.pnas) == 4


def test_two_concurrent_instances_partition_pnas():
    system = OddCISystem(seed=11, maintenance_interval_s=30.0)
    system.add_pnas(20, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job_a = uniform_bag(500, image_bits=1e6, ref_seconds=100.0,
                        name="job-a")
    job_b = uniform_bag(500, image_bits=1e6, ref_seconds=100.0,
                        name="job-b")
    sub_a = system.provider.submit_job(job_a, target_size=8)
    system.sim.run(until=200.0)
    sub_b = system.provider.submit_job(job_b, target_size=8)
    system.sim.run(until=600.0)
    members_a = {p.pna_id for p in system.pnas
                 if p.instance_id == sub_a.instance_id}
    members_b = {p.pna_id for p in system.pnas
                 if p.instance_id == sub_b.instance_id}
    assert not members_a & members_b
    assert len(members_a) >= 7  # near target (tolerance band)
    assert len(members_b) >= 7


def test_resize_shrinks_instance_via_trim():
    system = build_system(n_pnas=10)
    job = uniform_bag(1000, image_bits=1e6, ref_seconds=500.0)
    submission = system.provider.submit_job(job, target_size=10,
                                            heartbeat_interval_s=10.0)
    system.sim.run(until=60.0)
    assert system.busy_count() == 10
    system.provider.resize(submission.instance_id, 4)
    system.sim.run(until=300.0)
    assert system.busy_count() <= 5  # trimmed to ~4 (tolerance band)
    record = system.controller.instance(submission.instance_id)
    assert record.trims_sent >= 5


def test_resize_validation():
    system = build_system(n_pnas=2)
    job = uniform_bag(10, image_bits=1e6, ref_seconds=100.0)
    submission = system.provider.submit_job(job, target_size=2)
    with pytest.raises(InstanceError):
        system.provider.resize(submission.instance_id, 0)
    with pytest.raises(InstanceError):
        system.provider.resize("no-such-instance", 5)


def test_duplicate_instance_id_rejected():
    system = build_system(n_pnas=2)
    spec = InstanceSpec(target_size=1, image_name="x", image_bits=1e5)
    system.controller.create_instance(spec, instance_id="fixed")
    with pytest.raises(ProvisioningError):
        system.controller.create_instance(spec, instance_id="fixed")


def test_submit_job_validation():
    system = build_system(n_pnas=2)
    job = uniform_bag(5)
    with pytest.raises(ProvisioningError):
        system.provider.submit_job(job, target_size=0)


def test_provider_status_reporting():
    system = build_system(n_pnas=5)
    job = uniform_bag(20, image_bits=1e6, ref_seconds=30.0)
    submission = system.provider.submit_job(job, target_size=5,
                                            heartbeat_interval_s=10.0)
    system.sim.run(until=100.0)
    status = system.provider.status(submission.instance_id)
    assert status["target_size"] == 5
    assert status["tasks_total"] == 20
    assert status["size"] >= 4
    assert status["tasks_completed"] > 0
