"""Provider front-door contract: raw instances, submissions, eviction."""

import pytest

from repro.core import InstanceSpec, InstanceStatus, OddCISystem
from repro.core.provider import ready_size_for
from repro.errors import InstanceError, ProvisioningError
from repro.workloads import uniform_bag


def ready_system(seed=0, n_pnas=8):
    system = OddCISystem(seed=seed, maintenance_interval_s=20.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    return system


# -- raw instance API ---------------------------------------------------------

def test_request_instance_provisions_bare_capacity():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=4, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    assert record.size == 4
    status = system.provider.status(record.instance_id)
    assert status["size"] == 4
    assert status["target_size"] == 4
    # No job attached: no task progress fields.
    assert "tasks_completed" not in status


def test_resize_raw_instance_up_and_down():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=3, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    system.provider.resize(record.instance_id, 6)
    assert record.spec.target_size == 6
    system.sim.run(until=150.0)
    assert record.size == 6
    system.provider.resize(record.instance_id, 2)
    system.sim.run(until=260.0)
    assert record.size == 2


def test_release_dismantles_raw_instance():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=3, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    system.provider.release(record.instance_id)
    assert record.status is InstanceStatus.DISMANTLING
    # Releasing a dismantling instance is an error, not a silent no-op.
    with pytest.raises(InstanceError):
        system.provider.release(record.instance_id)


def test_status_unknown_instance_is_provisioning_error():
    system = ready_system()
    with pytest.raises(ProvisioningError):
        system.provider.status("no-such-instance")


# -- async provisioning tickets ----------------------------------------------

def bare_spec(target=4, tolerance=0.25):
    return InstanceSpec(target_size=target, image_name="bare",
                        image_bits=1e6, heartbeat_interval_s=10.0,
                        size_tolerance=tolerance)


def test_async_request_settles_at_tolerance_band():
    system = ready_system()
    spec = bare_spec()
    ticket = system.provider.request_instance_async(
        spec, tenant="t0", request_id="r0", timeout_s=300.0)
    assert not ticket.done
    system.sim.run(until=120.0)
    assert ticket.event.ok
    assert ticket.time_to_ready > 0.0
    assert ticket.record.size >= ready_size_for(spec)
    # The request context rides on the ticket for SLO classification.
    assert ticket.tenant == "t0"
    assert ticket.request_id == "r0"


def test_async_request_times_out_with_structured_error():
    # 12 PNAs can never satisfy target 64 within tolerance.
    system = ready_system(n_pnas=12)
    ticket = system.provider.request_instance_async(
        bare_spec(target=64), tenant="t1", request_id="r1",
        timeout_s=60.0)
    system.sim.run(until=120.0)
    assert ticket.done and not ticket.event.ok
    err = ticket.event.value
    assert isinstance(err, ProvisioningError)
    assert err.reason == "timeout"
    assert err.tenant == "t1"
    assert err.request_id == "r1"


def test_cancel_request_evicts_and_settles_ticket():
    system = ready_system()
    ticket = system.provider.request_instance_async(
        bare_spec(), request_id="r2", timeout_s=300.0)
    system.sim.run(until=5.0)  # still provisioning
    assert system.provider.cancel_request(ticket.instance_id, ticket)
    assert ticket.done and not ticket.event.ok
    assert ticket.event.value.reason == "cancelled"
    # Eviction is unconditional: no submission entry, no status.
    assert ticket.instance_id not in system.provider._submissions
    # Cancelling again is a no-op, not an error.
    assert not system.provider.cancel_request(ticket.instance_id, ticket)
    # The stale poll loop must go quiet, not resurrect the ticket.
    system.sim.run(until=120.0)
    assert not ticket.event.ok


def test_ticket_cancel_is_idempotent_and_loses_races_to_success():
    system = ready_system()
    ticket = system.provider.request_instance_async(
        bare_spec(), timeout_s=300.0)
    system.sim.run(until=120.0)
    assert ticket.event.ok
    # Already settled: cancel reports False and the event stays ok.
    assert not ticket.cancel()
    assert ticket.event.ok


# -- submission bookkeeping ---------------------------------------------------

def test_release_evicts_submission_and_stops_backend():
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0,
        release_on_completion=False)
    assert system.provider.backends() == [submission.backend]
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert submission.backend.done
    system.provider.release(submission.instance_id)
    # Eviction: the Backend must leave the fault-injection target set
    # and the submission map (the leak this contract pins down).
    assert system.provider.backends() == []
    assert system.provider._submissions == {}
    status = system.provider.status(submission.instance_id)
    assert status["status"] == InstanceStatus.DISMANTLING.value


def test_auto_release_evicts_on_completion():
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0)
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert submission.backend.done
    # The done-event callback lands right after the event fires; drain a
    # little sim time before observing the eviction.
    system.sim.run(until=system.sim.now + 30.0)
    assert system.provider.backends() == []
    assert submission.record.status in (InstanceStatus.DISMANTLING,
                                        InstanceStatus.DESTROYED)


def test_auto_release_races_crashed_controller():
    """Job finishes while the Controller is down: the instance cannot be
    dismantled (no control plane) but the submission must still be
    evicted — a dead Backend must not linger in backends()."""
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0)
    backend = submission.backend
    # Let the whole bag get assigned, then kill the Controller while the
    # last results are still in flight (short tasks: they outrun the
    # heartbeat-starvation disengage of the now-unanswered fleet).
    while (backend.tasks_assigned < job.n
           and system.sim.now < 500.0):
        system.sim.run(until=system.sim.now + 1.0)
    assert backend.tasks_assigned >= job.n
    assert not backend.done
    system.controller.crash()
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert backend.done
    system.sim.run(until=system.sim.now + 30.0)
    # Crashed Controller: no dismantle happened, but the entry is gone.
    assert submission.record.status not in (InstanceStatus.DISMANTLING,
                                            InstanceStatus.DESTROYED)
    assert system.provider.backends() == []
    # After restore the instance can be released for real.
    system.controller.restore()
    system.provider.release(submission.instance_id)
    assert submission.record.status is InstanceStatus.DISMANTLING
