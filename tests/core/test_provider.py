"""Provider front-door contract: raw instances, submissions, eviction."""

import pytest

from repro.core import InstanceSpec, InstanceStatus, OddCISystem
from repro.errors import InstanceError, ProvisioningError
from repro.workloads import uniform_bag


def ready_system(seed=0, n_pnas=8):
    system = OddCISystem(seed=seed, maintenance_interval_s=20.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    return system


# -- raw instance API ---------------------------------------------------------

def test_request_instance_provisions_bare_capacity():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=4, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    assert record.size == 4
    status = system.provider.status(record.instance_id)
    assert status["size"] == 4
    assert status["target_size"] == 4
    # No job attached: no task progress fields.
    assert "tasks_completed" not in status


def test_resize_raw_instance_up_and_down():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=3, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    system.provider.resize(record.instance_id, 6)
    assert record.spec.target_size == 6
    system.sim.run(until=150.0)
    assert record.size == 6
    system.provider.resize(record.instance_id, 2)
    system.sim.run(until=260.0)
    assert record.size == 2


def test_release_dismantles_raw_instance():
    system = ready_system()
    record = system.provider.request_instance(InstanceSpec(
        target_size=3, image_name="bare", image_bits=1e6,
        heartbeat_interval_s=10.0))
    system.sim.run(until=60.0)
    system.provider.release(record.instance_id)
    assert record.status is InstanceStatus.DISMANTLING
    # Releasing a dismantling instance is an error, not a silent no-op.
    with pytest.raises(InstanceError):
        system.provider.release(record.instance_id)


def test_status_unknown_instance_is_provisioning_error():
    system = ready_system()
    with pytest.raises(ProvisioningError):
        system.provider.status("no-such-instance")


# -- submission bookkeeping ---------------------------------------------------

def test_release_evicts_submission_and_stops_backend():
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0,
        release_on_completion=False)
    assert system.provider.backends() == [submission.backend]
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert submission.backend.done
    system.provider.release(submission.instance_id)
    # Eviction: the Backend must leave the fault-injection target set
    # and the submission map (the leak this contract pins down).
    assert system.provider.backends() == []
    assert system.provider._submissions == {}
    status = system.provider.status(submission.instance_id)
    assert status["status"] == InstanceStatus.DISMANTLING.value


def test_auto_release_evicts_on_completion():
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0)
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert submission.backend.done
    # The done-event callback lands right after the event fires; drain a
    # little sim time before observing the eviction.
    system.sim.run(until=system.sim.now + 30.0)
    assert system.provider.backends() == []
    assert submission.record.status in (InstanceStatus.DISMANTLING,
                                        InstanceStatus.DESTROYED)


def test_auto_release_races_crashed_controller():
    """Job finishes while the Controller is down: the instance cannot be
    dismantled (no control plane) but the submission must still be
    evicted — a dead Backend must not linger in backends()."""
    system = ready_system()
    job = uniform_bag(12, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0)
    backend = submission.backend
    # Let the whole bag get assigned, then kill the Controller while the
    # last results are still in flight (short tasks: they outrun the
    # heartbeat-starvation disengage of the now-unanswered fleet).
    while (backend.tasks_assigned < job.n
           and system.sim.now < 500.0):
        system.sim.run(until=system.sim.now + 1.0)
    assert backend.tasks_assigned >= job.n
    assert not backend.done
    system.controller.crash()
    system.provider.run_job_to_completion(submission, limit_s=1e5)
    assert backend.done
    system.sim.run(until=system.sim.now + 30.0)
    # Crashed Controller: no dismantle happened, but the entry is gone.
    assert submission.record.status not in (InstanceStatus.DISMANTLING,
                                            InstanceStatus.DESTROYED)
    assert system.provider.backends() == []
    # After restore the instance can be released for real.
    system.controller.restore()
    system.provider.release(submission.instance_id)
    assert submission.record.status is InstanceStatus.DISMANTLING
