"""Unit tests for instance records and probability policies."""

import pytest

from repro.core import (
    DeficitProportional,
    FixedProbability,
    InstanceRecord,
    InstanceSpec,
    InstanceStatus,
    new_instance_id,
)
from repro.errors import ConfigurationError, InstanceError


def spec(**overrides):
    defaults = dict(target_size=10, image_name="app", image_bits=1e6)
    defaults.update(overrides)
    return InstanceSpec(**defaults)


# -- InstanceSpec -----------------------------------------------------------

def test_spec_validation():
    with pytest.raises(InstanceError):
        spec(target_size=0)
    with pytest.raises(InstanceError):
        spec(image_bits=0)
    with pytest.raises(InstanceError):
        spec(image_name="")
    with pytest.raises(InstanceError):
        spec(lifetime_s=0)
    with pytest.raises(InstanceError):
        spec(heartbeat_interval_s=0)
    with pytest.raises(InstanceError):
        spec(size_tolerance=1.0)


def test_new_instance_ids_unique():
    assert new_instance_id() != new_instance_id()
    assert new_instance_id("x").startswith("x-")


# -- InstanceRecord ------------------------------------------------------------

def test_record_membership_and_deficit():
    r = InstanceRecord("i-1", spec(target_size=3), created_at=0.0)
    assert r.size == 0 and r.deficit == 3 and r.excess == 0
    r.mark_member("a", 1.0)
    r.mark_member("b", 1.0)
    assert r.size == 2 and r.deficit == 1
    r.mark_member("b", 2.0)  # refresh, not duplicate
    assert r.size == 2
    r.mark_member("c", 2.0)
    r.mark_member("d", 2.0)
    assert r.excess == 1 and r.deficit == 0


def test_record_within_tolerance():
    r = InstanceRecord("i", spec(target_size=100, size_tolerance=0.1), 0.0)
    for i in range(95):
        r.mark_member(f"p{i}", 0.0)
    assert r.within_tolerance()  # 95 in [90, 110]
    for i in range(95, 120):
        r.mark_member(f"p{i}", 0.0)
    assert not r.within_tolerance()  # 120 > 110


def test_record_expire_members():
    r = InstanceRecord("i", spec(), 0.0)
    r.mark_member("old", 10.0)
    r.mark_member("new", 100.0)
    assert r.expire_members(cutoff=50.0) == 1
    assert list(r.members) == ["new"]


def test_record_drop_member_idempotent():
    r = InstanceRecord("i", spec(), 0.0)
    r.mark_member("a", 0.0)
    r.drop_member("a")
    r.drop_member("a")
    assert r.size == 0


def test_dismantling_record_rejects_members():
    r = InstanceRecord("i", spec(), 0.0)
    r.status = InstanceStatus.DISMANTLING
    with pytest.raises(InstanceError):
        r.mark_member("a", 0.0)


# -- policies --------------------------------------------------------------------

def test_fixed_probability():
    assert FixedProbability(0.25).probability(5, 100) == 0.25
    with pytest.raises(ConfigurationError):
        FixedProbability(0.0)
    with pytest.raises(ConfigurationError):
        FixedProbability(1.5)


def test_deficit_proportional_basic():
    p = DeficitProportional(safety=1.0)
    assert p.probability(10, 100) == pytest.approx(0.1)
    assert p.probability(100, 100) == 1.0
    assert p.probability(200, 100) == 1.0  # clamped


def test_deficit_proportional_safety_padding():
    p = DeficitProportional(safety=1.5)
    assert p.probability(10, 100) == pytest.approx(0.15)


def test_deficit_proportional_unknown_population():
    p = DeficitProportional()
    assert p.probability(10, 0) == 1.0


def test_deficit_proportional_validation():
    with pytest.raises(ConfigurationError):
        DeficitProportional(safety=0)
    with pytest.raises(ConfigurationError):
        DeficitProportional().probability(0, 100)
