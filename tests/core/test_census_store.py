"""Differential suite: columnar census engine ≡ dict-backed reference.

The behavioural contract of the columnar refactor is *identical
observable outcomes*: any sequence of heartbeats (idle, busy, stale,
trim-pending), maintenance expiries and crash/restore cycles must leave
a :class:`~repro.core.census.ColumnarCensusStore`-backed Controller in
exactly the state the :class:`~repro.core.census.DictCensusStore`
reference produces.  These tests drive randomized sequences through
both engines — at the raw store level, at the Controller level (the
columnar cohort path vs the per-payload reference), and through the
dict-shaped views — and require equality throughout.
"""

import random

import numpy as np
import pytest

from repro.core.census import (
    STATE_BUSY,
    STATE_IDLE,
    ColumnarCensusStore,
    DictCensusStore,
    MembersView,
    NodeInterner,
    RegistryView,
    _selfcheck,
    make_census_store,
)
from repro.core.controller import Controller, DirectControlPlane
from repro.core.instance import InstanceSpec, reset_instance_sequence
from repro.core.messages import HeartbeatPayload, PNAState
from repro.core.network import Router
from repro.net.broadcast import BroadcastChannel
from repro.net.crypto import KeyRegistry
from repro.sim.core import Simulator

# ---------------------------------------------------------------- interner


def test_interner_assigns_dense_stable_indices():
    interner = NodeInterner()
    assert interner.intern("a") == 0
    assert interner.intern("b") == 1
    assert interner.intern("a") == 0  # stable on re-intern
    assert interner.index_of("b") == 1
    assert interner.index_of("nope") is None
    assert interner.id_of(1) == "b"
    assert len(interner) == 2
    assert "a" in interner and "zzz" not in interner


# ----------------------------------------------------- raw store differential


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_store_differential_fuzz(seed):
    """The module's own seeded fuzz: random touches, cohort groups,
    marks/drops, expiries, wipes and crashes against both engines in
    lockstep, with per-step columnar validation."""
    assert _selfcheck(ops=1500, seed=seed, verbose=False) == 0


def test_capacity_growth_preserves_state():
    interner = NodeInterner()
    store = ColumnarCensusStore(interner, initial_capacity=1)
    handle = store.bind_instance("inst")
    for i in range(100):
        idx = interner.intern(f"n{i}")
        store.touch(idx, PNAState.BUSY, "inst", float(i))
        store.mark_member(handle, idx, float(i))
    store.validate()
    assert store.registry_size() == 100
    assert store.member_count(handle) == 100
    assert store.registry_get("n42") == (42.0, PNAState.BUSY, "inst")


def test_make_census_store_backends(monkeypatch):
    assert isinstance(make_census_store(None, "columnar"),
                      ColumnarCensusStore)
    assert isinstance(make_census_store(None, "dict"), DictCensusStore)
    monkeypatch.setenv("REPRO_CENSUS_BACKEND", "dict")
    assert isinstance(make_census_store(None), DictCensusStore)
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        make_census_store(None, "btree")


# ------------------------------------------------------------------- views


@pytest.mark.parametrize("backend", ["columnar", "dict"])
def test_registry_view_dict_compat(backend):
    store = make_census_store(None, backend)
    view = RegistryView(store)
    assert view == {} and len(view) == 0 and not view
    view["p1"] = (5.0, PNAState.IDLE, None)
    view["p2"] = (6.0, PNAState.BUSY, "inst-a")
    assert len(view) == 2 and view
    assert "p1" in view and "p9" not in view
    assert view["p2"] == (6.0, PNAState.BUSY, "inst-a")
    assert view.get("p9") is None
    assert sorted(view.keys()) == ["p1", "p2"]
    assert sorted(view.values()) == [(5.0, PNAState.IDLE, None),
                                     (6.0, PNAState.BUSY, "inst-a")]
    assert view == {"p1": (5.0, PNAState.IDLE, None),
                    "p2": (6.0, PNAState.BUSY, "inst-a")}
    with pytest.raises(KeyError):
        view["p9"]
    view.clear()
    assert view == {}


@pytest.mark.parametrize("backend", ["columnar", "dict"])
def test_members_view_dict_compat(backend):
    store = make_census_store(None, backend)
    handle = store.bind_instance("inst")
    view = MembersView(store, handle)
    assert view == {} and not view
    for i, node in enumerate(["a", "b", "c"]):
        store.mark_member(handle, store.interner.intern(node), float(i))
    assert len(view) == 3
    assert view["b"] == 1.0 and view.get("z") is None
    assert "a" in view and "z" not in view
    assert sorted(view.items()) == [("a", 0.0), ("b", 1.0), ("c", 2.0)]
    assert dict(view) == {n: view[n] for n in view}
    with pytest.raises(KeyError):
        view["z"]
    view.clear()
    assert view == {} and store.member_count(handle) == 0


# ------------------------------------------- controller-level differential

HB_INTERVAL = 10.0


def _build_controller(backend):
    """A Controller with no PNAs: heartbeats are injected directly, so
    reset replies no-op (no registered channels) identically for both
    engines."""
    reset_instance_sequence()
    sim = Simulator(seed=0)
    router = Router(sim)
    plane = DirectControlPlane(
        BroadcastChannel(sim, beta_bps=1e9, name="bcast"))
    controller = Controller(sim, router, plane, KeyRegistry(),
                            maintenance_interval_s=50.0,
                            census_backend=backend)
    return sim, router, controller


def _census_state(controller):
    """Canonical observable census of a Controller."""
    return {
        "registry": sorted(controller.registry.items()),
        "members": {iid: sorted(rec.members.items())
                    for iid, rec in controller.instances.items()},
        "sizes": {iid: rec.size
                  for iid, rec in controller.instances.items()},
        "statuses": {iid: rec.status.value
                     for iid, rec in controller.instances.items()},
        "pending_trims": dict(controller._pending_trims),
        "counters": controller.counters.as_dict(),
        "idle": controller.idle_estimate(),
        "alive": controller.alive_estimate(),
    }


def _random_script(rng, n_nodes=120, rounds=30):
    """A deterministic schedule of census-exercising operations."""
    script = []
    for r in range(rounds):
        op = rng.randrange(12)
        if op <= 5:
            # heartbeat cohort: mixed idle / busy / stale payloads
            cohort = rng.sample(range(n_nodes), rng.randrange(20, 60))
            kinds = [rng.randrange(4) for _ in cohort]
            script.append(("cohort", cohort, kinds))
        elif op <= 7:
            script.append(("create", rng.randrange(2, 30)))
        elif op == 8:
            script.append(("trim", rng.randrange(1, 5)))
        elif op == 9:
            script.append(("destroy",))
        elif op == 10:
            script.append(("advance", 50.0 * rng.randrange(1, 4)))
        else:
            script.append(("crash", 25.0 * rng.randrange(1, 5)))
    return script


def _run_script(backend, script, *, columnar_delivery):
    sim, router, controller = _build_controller(backend)
    live = []  # instance ids created so far (any status)
    rng_hb = 0

    def payload_for(node, kind):
        pna_id = f"pna-{node}"
        if kind == 0 or not live:
            return HeartbeatPayload(pna_id=pna_id, state=PNAState.IDLE,
                                    instance_id=None)
        if kind == 3:
            return HeartbeatPayload(pna_id=pna_id, state=PNAState.BUSY,
                                    instance_id="no-such-instance")
        iid = live[(node + kind) % len(live)]
        return HeartbeatPayload(pna_id=pna_id, state=PNAState.BUSY,
                                instance_id=iid)

    for step in script:
        kind = step[0]
        if kind == "cohort":
            _, cohort, kinds = step
            payloads = [payload_for(n, k) for n, k in zip(cohort, kinds)]
            if columnar_delivery:
                idxs = [router.interner.intern(p.pna_id) for p in payloads]
                controller._receive_cohort(payloads, idxs)
            else:
                controller._receive_batch(payloads)
        elif kind == "create":
            if not controller.alive:
                continue
            spec = InstanceSpec(target_size=step[1], image_name="img",
                                image_bits=1e6,
                                heartbeat_interval_s=HB_INTERVAL)
            live.append(controller.create_instance(spec).instance_id)
        elif kind == "trim":
            targets = [iid for iid in live
                       if controller.instances[iid].status.value
                       not in ("dismantling", "destroyed")]
            if targets:
                controller._pending_trims[targets[0]] = step[1]
        elif kind == "destroy":
            if not controller.alive:
                continue
            targets = [iid for iid in live
                       if controller.instances[iid].status.value
                       not in ("dismantling", "destroyed")]
            if targets:
                controller.destroy_instance(targets[-1])
        elif kind == "advance":
            sim.run(until=sim.now + step[1])
        elif kind == "crash":
            if controller.alive:
                controller.crash()
                sim.run(until=sim.now + step[1])
                controller.restore()
        rng_hb += 1
    sim.run(until=sim.now + 100.0)
    return _census_state(controller)


@pytest.mark.parametrize("seed", [3, 11, 47])
def test_controller_differential_columnar_vs_dict(seed):
    """The tentpole contract: the columnar cohort path and the
    dict-backed per-payload reference produce identical censuses across
    randomized heartbeat / trim / stale / expiry / crash-restore
    sequences."""
    script = _random_script(random.Random(seed))
    columnar = _run_script("columnar", script, columnar_delivery=True)
    reference = _run_script("dict", script, columnar_delivery=False)
    assert columnar == reference
    # The workload actually exercised the interesting paths.
    assert columnar["counters"].get("heartbeats", 0) > 0


def test_columnar_batch_vs_cohort_same_controller_paths():
    """Within the columnar engine, `_receive_cohort` must equal
    `_receive_batch` payload-for-payload (same store, same sequences)."""
    script = _random_script(random.Random(5))
    cohort = _run_script("columnar", script, columnar_delivery=True)
    batch = _run_script("columnar", script, columnar_delivery=False)
    assert cohort == batch


def test_cohort_with_duplicate_nodes_falls_back():
    """A payload list repeating a node is not a wheel cohort: the
    columnar path must detect it and replay the per-payload order (last
    write wins, exactly like the reference)."""
    sim, router, controller = _build_controller("columnar")
    spec = InstanceSpec(target_size=4, image_name="img", image_bits=1e6,
                        heartbeat_interval_s=HB_INTERVAL)
    iid = controller.create_instance(spec).instance_id
    payloads, idxs = [], []
    for n in range(20):
        pna_id = f"pna-{n}"
        payloads.append(HeartbeatPayload(pna_id=pna_id,
                                         state=PNAState.BUSY,
                                         instance_id=iid))
        idxs.append(router.interner.intern(pna_id))
    # Same node, later in the same batch, now idle: per-payload order
    # means idle wins.
    payloads.append(HeartbeatPayload(pna_id="pna-3", state=PNAState.IDLE,
                                     instance_id=None))
    idxs.append(router.interner.index_of("pna-3"))
    controller._receive_cohort(payloads, idxs)
    assert controller.registry["pna-3"][1] is PNAState.IDLE
    assert "pna-3" not in controller.instances[iid].members
    assert controller.instances[iid].size == 19


def test_small_cohorts_use_per_payload_path():
    sim, router, controller = _build_controller("columnar")
    payloads, idxs = [], []
    for n in range(Controller._COHORT_MIN - 1):
        pna_id = f"pna-{n}"
        payloads.append(HeartbeatPayload(pna_id=pna_id,
                                         state=PNAState.IDLE,
                                         instance_id=None))
        idxs.append(router.interner.intern(pna_id))
    controller._receive_cohort(payloads, idxs)
    assert len(controller.registry) == len(payloads)
    assert controller.counters["heartbeats"] == len(payloads)


def test_columnar_store_validate_after_controller_workload():
    """Shape/invariant discipline holds after a real Controller
    workload (the assertion-based numpy-boundary check)."""
    script = _random_script(random.Random(13))
    sim_state = _run_script("columnar", script, columnar_delivery=True)
    assert sim_state["counters"].get("heartbeats", 0) >= 0
    # validate() runs inside _selfcheck too; here assert on a live store:
    _, router, controller = _build_controller("columnar")
    spec = InstanceSpec(target_size=3, image_name="img", image_bits=1e6)
    iid = controller.create_instance(spec).instance_id
    payloads = [HeartbeatPayload(pna_id=f"p{n}", state=PNAState.BUSY,
                                 instance_id=iid) for n in range(40)]
    idxs = [router.interner.intern(p.pna_id) for p in payloads]
    controller._receive_cohort(payloads, idxs)
    controller.census.validate()
    assert controller.instances[iid].size == 40


# ------------------------------------------------------- crash & restore


@pytest.mark.parametrize("backend", ["columnar", "dict"])
def test_crash_clears_census_and_restore_reconciles(backend):
    sim, router, controller = _build_controller(backend)
    spec = InstanceSpec(target_size=5, image_name="img", image_bits=1e6,
                        heartbeat_interval_s=HB_INTERVAL)
    iid = controller.create_instance(spec).instance_id
    payloads = [HeartbeatPayload(pna_id=f"p{n}", state=PNAState.BUSY,
                                 instance_id=iid) for n in range(20)]
    controller._receive_batch(payloads)
    assert controller.instances[iid].size == 20
    record = controller.instances[iid]

    controller.crash()
    assert controller.registry == {}
    assert controller.instances[iid].size == 0
    sim.run(until=sim.now + 30.0)
    controller.restore()
    assert controller.instances[iid] is record  # identity preserved
    controller._receive_batch(payloads)
    assert controller.instances[iid].size == 20
    assert len(controller.registry) == 20


def test_destroyed_instance_releases_column():
    sim, router, controller = _build_controller("columnar")
    spec = InstanceSpec(target_size=3, image_name="img", image_bits=1e6,
                        heartbeat_interval_s=HB_INTERVAL)
    iid = controller.create_instance(spec).instance_id
    controller._receive_batch(
        [HeartbeatPayload(pna_id=f"p{n}", state=PNAState.BUSY,
                          instance_id=iid) for n in range(3)])
    controller.destroy_instance(iid)
    # Expire the members (no fresh heartbeats), then let maintenance
    # flip DISMANTLING -> DESTROYED and release the store column.
    sim.run(until=sim.now + 200.0)
    record = controller.instances[iid]
    assert record.status.value == "destroyed"
    assert record.size == 0 and record.members == {}
    assert not controller.census._is_bound(record.census_handle)
    controller.census.validate()
