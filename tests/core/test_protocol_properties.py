"""Property-based tests over the OddCI control protocol.

Hypothesis drives random management workloads (instance creation,
resizing, destruction, churn) against a live system and checks the
Controller's invariants after every settle period.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import InstanceStatus, OddCISystem, PNAState
from repro.workloads import uniform_bag


def busy_online(system):
    return [p for p in system.pnas if p.online and
            p.state is PNAState.BUSY]


@st.composite
def management_script(draw):
    """A short random sequence of management actions."""
    n_actions = draw(st.integers(min_value=1, max_value=4))
    actions = []
    for _ in range(n_actions):
        kind = draw(st.sampled_from(["submit", "resize", "destroy",
                                     "churn"]))
        actions.append((kind, draw(st.integers(min_value=1, max_value=6))))
    return actions


@given(script=management_script(), seed=st.integers(0, 100))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_controller_invariants_under_random_management(script, seed):
    system = OddCISystem(seed=seed, maintenance_interval_s=15.0)
    system.add_pnas(12, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    submissions = []
    for kind, arg in script:
        if kind == "submit":
            job = uniform_bag(50_000, image_bits=1e6, ref_seconds=300.0)
            submissions.append(system.provider.submit_job(
                job, target_size=min(arg + 2, 8),
                heartbeat_interval_s=10.0,
                release_on_completion=False))
        elif kind == "resize" and submissions:
            target = submissions[arg % len(submissions)]
            record = system.controller.instance(target.instance_id)
            if record.status not in (InstanceStatus.DISMANTLING,
                                     InstanceStatus.DESTROYED):
                system.provider.resize(target.instance_id,
                                       max(1, arg))
        elif kind == "destroy" and submissions:
            target = submissions[arg % len(submissions)]
            record = system.controller.instance(target.instance_id)
            if record.status not in (InstanceStatus.DISMANTLING,
                                     InstanceStatus.DESTROYED):
                system.provider.release(target.instance_id)
        elif kind == "churn":
            for p in system.pnas[:arg]:
                if p.online:
                    p.shutdown()
                else:
                    p.restart()
        system.sim.run(until=system.sim.now + 120.0)

    # settle
    system.sim.run(until=system.sim.now + 300.0)

    # Invariant 1: a PNA belongs to at most one instance, and busy PNAs
    # always carry an instance id.
    for p in system.pnas:
        if p.state is PNAState.BUSY:
            assert p.instance_id is not None
        else:
            assert p.instance_id is None
            assert p.dve is None

    # Invariant 2: instance membership counts only known PNAs, without
    # duplicates across live instances.
    seen = {}
    for record in system.controller.instances.values():
        if record.status is InstanceStatus.DESTROYED:
            continue
        for pna_id in record.members:
            assert pna_id not in seen, (
                f"{pna_id} in both {seen.get(pna_id)} and "
                f"{record.instance_id}")
            seen[pna_id] = record.instance_id

    # Invariant 3: destroyed/dismantling instances converge to empty and
    # no online PNA still claims them.
    for record in system.controller.instances.values():
        if record.status in (InstanceStatus.DISMANTLING,
                             InstanceStatus.DESTROYED):
            claimants = [p for p in system.pnas
                         if p.online and p.instance_id ==
                         record.instance_id]
            assert not claimants

    # Invariant 4: live instances are not wildly over target (trim keeps
    # them within tolerance after settling; allow the band plus one
    # maintenance round of slack).
    for record in system.controller.instances.values():
        if record.status is InstanceStatus.ACTIVE:
            limit = record.spec.target_size * (
                1 + record.spec.size_tolerance) + 1
            online_members = [pid for pid in record.members
                              if any(p.pna_id == pid and p.online
                                     for p in system.pnas)]
            assert len(online_members) <= limit + record.excess


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_heartbeat_conservation(seed):
    """Every online PNA's latest heartbeat is reflected in the registry,
    and idle+busy accounting is conserved."""
    system = OddCISystem(seed=seed, maintenance_interval_s=1e6)
    system.add_pnas(10, heartbeat_interval_s=10.0)
    job = uniform_bag(1000, image_bits=1e5, ref_seconds=100.0)
    system.provider.submit_job(job, target_size=4,
                               heartbeat_interval_s=10.0)
    system.sim.run(until=200.0)
    assert len(system.controller.registry) == 10
    idle = system.controller.idle_estimate()
    alive = system.controller.alive_estimate()
    busy = alive - idle
    assert busy == system.busy_count()
    assert idle == 10 - system.busy_count()
