"""Focused unit tests for DVE and PNA internals and edge cases."""

import pytest

from repro.core import (
    OddCISystem,
    PNAState,
    ResetPayload,
    WakeupPayload,
    sign_control,
)
from repro.core.dve import DVE
from repro.errors import OddCIError


def make_system(n=1, **kwargs):
    system = OddCISystem(seed=17, maintenance_interval_s=1e6, **kwargs)
    system.add_pnas(n, heartbeat_interval_s=1e5, dve_poll_interval_s=5.0)
    return system


def wakeup_for(system, instance_id="i-test", probability=1.0,
               image_bits=1e5, **kwargs):
    payload = WakeupPayload(instance_id=instance_id, image_name="img",
                            image_bits=image_bits, probability=probability,
                            **kwargs)
    return payload, sign_control(system.controller.key, payload)


# -- DVE ----------------------------------------------------------------------

def test_dve_validation():
    system = make_system()
    pna = system.pnas[0]
    with pytest.raises(OddCIError):
        DVE(system.sim, pna, "i", "backend", poll_interval_s=0)
    dve = DVE(system.sim, pna, "i", "backend")
    with pytest.raises(OddCIError):
        DVE(system.sim, pna, "i", "backend", request_timeout_s=-1)
    dve.destroy()


def test_dve_destroy_is_idempotent_and_stops_loop():
    system = make_system()
    pna = system.pnas[0]
    dve = DVE(system.sim, pna, "i", "backend")
    system.sim.run(until=1.0)
    dve.destroy()
    dve.destroy()
    assert dve.destroyed
    # No further messages after destruction: the loop is dead.
    before = system.sim.events_executed
    system.sim.run(until=500.0)
    # only residual timers may fire; the DVE sends nothing new
    assert dve.tasks_completed == 0


def test_dve_ignores_late_backend_message_after_destroy():
    system = make_system()
    pna = system.pnas[0]
    dve = DVE(system.sim, pna, "i", "backend")
    dve.destroy()
    dve.on_backend_message("anything")  # must not raise


def test_dve_request_timeout_retries_without_backend():
    """No backend registered: requests vanish; the DVE must keep
    retrying rather than wedge."""
    system = make_system()
    pna = system.pnas[0]
    dve = DVE(system.sim, pna, "ghost-instance", "ghost-backend",
              poll_interval_s=5.0, request_timeout_s=10.0)
    system.sim.run(until=100.0)
    assert dve.retransmissions >= 5
    dve.destroy()


# -- PNA ----------------------------------------------------------------------

def test_offline_pna_drops_control():
    system = make_system()
    pna = system.pnas[0]
    pna.shutdown()
    payload, tag = wakeup_for(system)
    pna.deliver_control(payload, tag)
    assert pna.state is PNAState.IDLE
    assert pna.wakeups_seen == 0  # dropped before accounting


def test_unknown_control_payload_raises():
    system = make_system()
    pna = system.pnas[0]
    from repro.net import crypto

    tag = crypto.sign(system.controller.key, {"type": "garbage"})

    class Garbage:
        def signable_fields(self):
            return {"type": "garbage"}

    with pytest.raises(OddCIError):
        pna.deliver_control(Garbage(), tag)


def test_idle_pna_drops_reset_silently():
    system = make_system()
    pna = system.pnas[0]
    payload = ResetPayload(instance_id=None)
    tag = sign_control(system.controller.key, payload)
    pna.deliver_control(payload, tag)
    assert pna.resets_handled == 0
    assert pna.state is PNAState.IDLE


def test_reset_for_other_instance_ignored():
    system = make_system()
    pna = system.pnas[0]
    w_payload, w_tag = wakeup_for(system, instance_id="mine")
    pna.deliver_control(w_payload, w_tag)
    assert pna.state is PNAState.BUSY
    r_payload = ResetPayload(instance_id="theirs")
    r_tag = sign_control(system.controller.key, r_payload)
    pna.deliver_control(r_payload, r_tag)
    assert pna.state is PNAState.BUSY
    assert pna.instance_id == "mine"


def test_wildcard_reset_destroys_any_instance():
    system = make_system()
    pna = system.pnas[0]
    w_payload, w_tag = wakeup_for(system, instance_id="mine")
    pna.deliver_control(w_payload, w_tag)
    r_payload = ResetPayload(instance_id=None)
    r_tag = sign_control(system.controller.key, r_payload)
    pna.deliver_control(r_payload, r_tag)
    assert pna.state is PNAState.IDLE
    assert pna.dve is None


def test_wakeup_adopts_heartbeat_interval():
    system = make_system()
    pna = system.pnas[0]
    payload, tag = wakeup_for(system, heartbeat_interval_s=7.0)
    pna.deliver_control(payload, tag)
    assert pna.heartbeat_interval_s == 7.0


def test_probability_drop_accounting():
    system = make_system(n=200)
    payload, tag = wakeup_for(system, probability=0.3)
    for pna in system.pnas:
        pna.deliver_control(payload, tag)
    accepted = sum(p.wakeups_accepted for p in system.pnas)
    dropped = sum(p.dropped_probability for p in system.pnas)
    assert accepted + dropped == 200
    assert 35 < accepted < 85  # Binomial(200, 0.3)


def test_shutdown_restart_channel_management_flag():
    system = make_system()
    pna = system.pnas[0]
    pna.shutdown(manage_channel=False)
    assert not pna.online
    assert pna.channel.up  # untouched
    pna.restart(manage_channel=False)
    assert pna.online
    pna.shutdown()  # default manages the channel
    assert not pna.channel.up
    pna.restart()
    assert pna.channel.up
    # double restart/shutdown are no-ops
    pna.restart()
    pna.shutdown()
    pna.shutdown()


def test_pna_constructor_validation():
    from repro.core.pna import PNA
    from repro.net import DuplexChannel

    system = make_system()
    ch = DuplexChannel(system.sim, rate_bps=1e6)
    with pytest.raises(OddCIError):
        PNA(system.sim, "", router=system.router, channel=ch,
            controller_key=b"k")
    with pytest.raises(OddCIError):
        PNA(system.sim, "x", router=system.router, channel=ch,
            controller_key=b"k", heartbeat_interval_s=0)


def test_busy_heartbeats_carry_instance_id():
    from repro.core import InstanceSpec

    system = make_system()
    pna = system.pnas[0]
    spec = InstanceSpec(target_size=1, image_name="img", image_bits=1e5,
                        heartbeat_interval_s=30.0)
    system.controller.create_instance(spec, instance_id="i-hb")
    system.sim.run(until=100.0)
    seen, state, instance = system.controller.registry[pna.pna_id]
    assert state is PNAState.BUSY
    assert instance == "i-hb"


def test_controller_resets_busy_pna_of_unknown_instance():
    """A PNA claiming membership of an instance the Controller never
    created (or has destroyed) is ordered back to idle."""
    system = make_system()
    pna = system.pnas[0]
    payload, tag = wakeup_for(system, instance_id="rogue-instance")
    pna.deliver_control(payload, tag)
    assert pna.state is PNAState.BUSY
    system.sim.run(until=2e5)  # heartbeat -> controller -> reset reply
    assert pna.state is PNAState.IDLE
    assert pna.resets_handled >= 1
