"""Tests for tail replication (speculative execution of stragglers)."""

import pytest

from repro.core import Backend, OddCISystem, Router
from repro.core.dve import CONTROL_PAYLOAD_BITS
from repro.core.messages import NoWork, TaskAssignment, TaskRequest, TaskResultPayload
from repro.errors import BackendError
from repro.net import DuplexChannel
from repro.sim import Simulator
from repro.workloads import uniform_bag


class FakePNA:
    def __init__(self, sim, router, pna_id):
        self.sim = sim
        self.router = router
        self.pna_id = pna_id
        self.inbox = []
        ch = DuplexChannel(sim, rate_bps=1e9)
        router.register_pna(pna_id, ch, lambda m: self.inbox.append(m))

    def request(self):
        self.router.send_from_pna(
            self.pna_id, "backend",
            TaskRequest(pna_id=self.pna_id, instance_id="i"),
            CONTROL_PAYLOAD_BITS)

    def complete(self, task_id):
        self.router.send_from_pna(
            self.pna_id, "backend",
            TaskResultPayload(pna_id=self.pna_id, task_id=task_id),
            CONTROL_PAYLOAD_BITS)

    def last(self):
        return self.inbox[-1].payload if self.inbox else None


def make(sim, router, n_tasks=2, **kwargs):
    job = uniform_bag(n_tasks, image_bits=1e6, ref_seconds=10.0)
    return Backend(sim, job, router, replicate_tail=True, **kwargs), job


def test_replica_issued_when_bag_empty():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make(sim, router, n_tasks=1)
    p1 = FakePNA(sim, router, "p1")
    p2 = FakePNA(sim, router, "p2")
    p1.request()
    sim.run()
    assert isinstance(p1.last(), TaskAssignment)
    p2.request()
    sim.run()
    # bag is empty but task 0 is in flight: p2 gets a replica, not NoWork
    assert isinstance(p2.last(), TaskAssignment)
    assert p2.last().task_id == 0
    assert backend.replicas_issued == 1


def test_first_result_wins_and_later_is_duplicate():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make(sim, router, n_tasks=1)
    p1 = FakePNA(sim, router, "p1")
    p2 = FakePNA(sim, router, "p2")
    p1.request(); sim.run()
    p2.request(); sim.run()
    p2.complete(0); sim.run()
    assert backend.done
    report = backend.done_event.value
    assert report.replicas_issued == 1
    p1.complete(0); sim.run()
    assert backend.duplicates == 1
    assert backend.completed_count == 1


def test_same_worker_not_given_its_own_task_as_replica():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make(sim, router, n_tasks=1)
    p1 = FakePNA(sim, router, "p1")
    p1.request(); sim.run()
    p1.request(); sim.run()
    assert isinstance(p1.last(), NoWork)
    assert backend.replicas_issued == 0


def test_max_replicas_bounds_copies():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make(sim, router, n_tasks=1, max_replicas=2)
    workers = [FakePNA(sim, router, f"p{i}") for i in range(3)]
    for w in workers:
        w.request()
        sim.run()
    # primary + 1 replica allowed; third requester gets NoWork
    assert isinstance(workers[0].last(), TaskAssignment)
    assert isinstance(workers[1].last(), TaskAssignment)
    assert isinstance(workers[2].last(), NoWork)


def test_oldest_in_flight_replicated_first():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make(sim, router, n_tasks=2)
    p1 = FakePNA(sim, router, "p1")
    p2 = FakePNA(sim, router, "p2")
    p3 = FakePNA(sim, router, "p3")
    p1.request(); sim.run(until=1.0)   # task 0 at t~0
    p2.request(); sim.run(until=2.0)   # task 1 at t~1
    p3.request(); sim.run(until=3.0)
    assert p3.last().task_id == 0      # oldest assignment replicated


def test_max_replicas_validation():
    sim = Simulator()
    router = Router(sim)
    job = uniform_bag(1)
    with pytest.raises(BackendError):
        Backend(sim, job, router, replicate_tail=True, max_replicas=1)


def test_end_to_end_replication_beats_straggler():
    """A slow node holding the last task is rescued by a replica on a
    fast node."""
    system = OddCISystem(seed=33, maintenance_interval_s=1e6)
    # one very slow node, three fast ones
    slow = system.add_pna(executor=lambda ref: ref * 50.0,
                          heartbeat_interval_s=1e5,
                          dve_poll_interval_s=2.0)
    system.add_pnas(3, heartbeat_interval_s=1e5, dve_poll_interval_s=2.0)
    job = uniform_bag(4, image_bits=1e5, ref_seconds=20.0)
    submission = system.provider.submit_job(job, target_size=4,
                                            replicate_tail=True)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    # Without replication the slow node's task takes 1000 s; with it a
    # fast node re-executes the straggler and the job finishes earlier.
    assert report.makespan < 900.0
    assert report.replicas_issued >= 1
