"""Heartbeat cohort batching must be transparent to every observer.

PNAs sharing a (controller, interval, phase) key beat through one
shared :class:`~repro.sim.wheel.TimerWheel` tick and one batched router
delivery per arrival instant — but controllers, aggregators and legacy
per-message components must see exactly what per-PNA timers produced.
"""

import pytest

from repro.core import OddCISystem, PNAState
from repro.core.messages import HeartbeatPayload
from repro.net.message import Message
from repro.workloads import uniform_bag


def build_system(n_pnas=10, heartbeat_interval_s=20.0):
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         maintenance_interval_s=1e6, seed=7)
    system.add_pnas(n_pnas, heartbeat_interval_s=heartbeat_interval_s,
                    dve_poll_interval_s=5.0)
    return system


def test_controller_sees_every_heartbeat():
    system = build_system(n_pnas=10, heartbeat_interval_s=20.0)
    system.sim.run(until=100.5)  # slack covers uplink serialization
    sent = sum(p.heartbeats_sent for p in system.pnas)
    assert sent == 10 * 5  # beats at 20/40/60/80/100 for each node
    assert system.controller.counters["heartbeats"] == sent


def test_same_phase_pnas_share_one_cohort():
    system = build_system(n_pnas=50)
    cohorts = system.router._cohorts
    assert len(cohorts) == 1
    (cohort,) = cohorts.values()
    assert len(cohort.members) == 50
    # One shared wheel => a tick is one calendar entry, not fifty.
    assert cohort.wheel.subscriber_count == 1


def test_different_phases_get_distinct_cohorts():
    system = OddCISystem(maintenance_interval_s=1e6, seed=1)
    system.add_pnas(4, heartbeat_interval_s=30.0)

    def late_join():
        system.add_pnas(3, heartbeat_interval_s=30.0)

    system.sim.schedule_at(10.0, late_join)
    system.sim.run(until=11.0)
    assert len(system.router._cohorts) == 2
    system.sim.run(until=90.0)
    # Every node still beats on its own private timetable.
    for pna in system.pnas[:4]:
        assert pna.heartbeats_sent == 3  # t = 30, 60, 90
    for pna in system.pnas[4:]:
        assert pna.heartbeats_sent == 2  # t = 40, 70


def test_offline_pna_does_not_beat():
    system = build_system(n_pnas=3, heartbeat_interval_s=10.0)
    system.pnas[0].shutdown()
    system.sim.run(until=35.0)
    assert system.pnas[0].heartbeats_sent == 0
    assert system.pnas[1].heartbeats_sent == 3


def test_per_message_fallback_reconstructs_messages():
    """A component with no batch/payload entry point receives classic
    Message envelopes from the batched path, one per heartbeat."""
    system = build_system(n_pnas=5, heartbeat_interval_s=15.0)
    router = system.router
    got = []
    router.register_component("legacy-sink", got.append)
    for pna in system.pnas:
        pna.controller_id = "legacy-sink"
    system.sim.run(until=16.0)
    assert len(got) == 5
    for msg in got:
        assert isinstance(msg, Message)
        assert msg.recipient == "legacy-sink"
        assert isinstance(msg.payload, HeartbeatPayload)
        assert msg.payload.state is PNAState.IDLE
        assert msg.sender == msg.payload.pna_id


def test_batched_census_matches_during_job():
    """With a job running, the controller's busy/idle census tracks the
    fleet exactly as with per-message heartbeats (states ride in the
    same payloads, just delivered in batches)."""
    system = build_system(n_pnas=8, heartbeat_interval_s=20.0)
    job = uniform_bag(100, image_bits=1e6, ref_seconds=500.0)
    system.provider.submit_job(job, target_size=8,
                               heartbeat_interval_s=20.0)
    system.sim.run(until=50.0)
    assert system.busy_count() == 8
    busy_in_registry = sum(
        1 for (_seen, state, _iid) in system.controller.registry.values()
        if state is PNAState.BUSY)
    assert busy_in_registry == 8
