"""Heartbeat cohort batching must be transparent to every observer.

PNAs sharing a (controller, interval, phase) key beat through one
shared :class:`~repro.sim.wheel.TimerWheel` tick and one batched router
delivery per arrival instant — but controllers, aggregators and legacy
per-message components must see exactly what per-PNA timers produced.
"""

import pytest

from repro.core import OddCISystem, PNAState
from repro.core.messages import HeartbeatPayload
from repro.net.message import Message
from repro.workloads import uniform_bag


def build_system(n_pnas=10, heartbeat_interval_s=20.0):
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         maintenance_interval_s=1e6, seed=7)
    system.add_pnas(n_pnas, heartbeat_interval_s=heartbeat_interval_s,
                    dve_poll_interval_s=5.0)
    return system


def test_controller_sees_every_heartbeat():
    system = build_system(n_pnas=10, heartbeat_interval_s=20.0)
    system.sim.run(until=100.5)  # slack covers uplink serialization
    sent = sum(p.heartbeats_sent for p in system.pnas)
    assert sent == 10 * 5  # beats at 20/40/60/80/100 for each node
    assert system.controller.counters["heartbeats"] == sent


def test_same_phase_pnas_share_one_cohort():
    system = build_system(n_pnas=50)
    cohorts = system.router._cohorts
    assert len(cohorts) == 1
    (cohort,) = cohorts.values()
    assert len(cohort.members) == 50
    # One shared wheel => a tick is one calendar entry, not fifty.
    assert cohort.wheel.subscriber_count == 1


def test_different_phases_get_distinct_cohorts():
    system = OddCISystem(maintenance_interval_s=1e6, seed=1)
    system.add_pnas(4, heartbeat_interval_s=30.0)

    def late_join():
        system.add_pnas(3, heartbeat_interval_s=30.0)

    system.sim.schedule_at(10.0, late_join)
    system.sim.run(until=11.0)
    assert len(system.router._cohorts) == 2
    system.sim.run(until=90.0)
    # Every node still beats on its own private timetable.
    for pna in system.pnas[:4]:
        assert pna.heartbeats_sent == 3  # t = 30, 60, 90
    for pna in system.pnas[4:]:
        assert pna.heartbeats_sent == 2  # t = 40, 70


def test_offline_pna_does_not_beat():
    system = build_system(n_pnas=3, heartbeat_interval_s=10.0)
    system.pnas[0].shutdown()
    system.sim.run(until=35.0)
    assert system.pnas[0].heartbeats_sent == 0
    assert system.pnas[1].heartbeats_sent == 3


def test_per_message_fallback_reconstructs_messages():
    """A component with no batch/payload entry point receives classic
    Message envelopes from the batched path, one per heartbeat."""
    system = build_system(n_pnas=5, heartbeat_interval_s=15.0)
    router = system.router
    got = []
    router.register_component("legacy-sink", got.append)
    for pna in system.pnas:
        pna.controller_id = "legacy-sink"
    system.sim.run(until=16.0)
    assert len(got) == 5
    for msg in got:
        assert isinstance(msg, Message)
        assert msg.recipient == "legacy-sink"
        assert isinstance(msg.payload, HeartbeatPayload)
        assert msg.payload.state is PNAState.IDLE
        assert msg.sender == msg.payload.pna_id


def test_wakeup_interval_change_recohorts_across_wheels():
    """A mid-run ``heartbeat_interval_s`` change (wakeup adoption) must
    move the PNA between TimerWheel buckets: old cohort pruned, new
    cohort keyed by the new (interval, phase), beats on the new
    timetable from the change instant."""
    from repro.core import WakeupPayload, sign_control

    system = build_system(n_pnas=6, heartbeat_interval_s=20.0)
    router = system.router
    (old_key,) = router._cohorts
    old_cohort = router._cohorts[old_key]
    old_wheel = old_cohort.wheel
    mover = system.pnas[0]

    def rewire():
        payload = WakeupPayload(instance_id="i-rewire", image_name="img",
                                image_bits=1e5, probability=1.0,
                                heartbeat_interval_s=7.0)
        mover.deliver_control(
            payload, sign_control(system.controller.key, payload))

    system.sim.schedule_at(30.0, rewire)
    system.sim.run(until=31.0)
    assert mover.heartbeat_interval_s == 7.0
    # Old cohort keeps the other five members on the shared wheel; the
    # mover now owns a distinct cohort keyed by the new interval+phase.
    assert mover.pna_id not in old_cohort.members
    assert len(old_cohort.members) == 5
    assert len(router._cohorts) == 2
    new_cohort = mover._hb_cohort
    assert new_cohort is not old_cohort
    assert new_cohort.wheel is not old_wheel
    assert new_cohort.wheel.interval_s == 7.0
    assert mover.pna_id in new_cohort.members

    before = mover.heartbeats_sent
    system.sim.run(until=65.5)
    # New timetable: joined at t=30 with I=7 -> beats at 37,44,51,58,65.
    assert mover.heartbeats_sent - before == 5
    # The remaining members never left their 20s timetable: 40 and 60.
    assert all(p.heartbeats_sent == 3 for p in system.pnas[1:])


def test_interval_churn_drains_and_rebuilds_cohorts():
    """Repeatedly bouncing a PNA between intervals exercises the wheel
    unsubscribe/disarm path: emptied cohorts are dropped from the
    router map and their wheels stop ticking."""
    system = build_system(n_pnas=1, heartbeat_interval_s=10.0)
    router = system.router
    pna = system.pnas[0]
    for interval in (3.0, 11.0, 5.0, 10.0, 3.0):
        pna.heartbeat_interval_s = interval
        pna._restart_heartbeat()
        # The old cohort emptied: exactly one cohort remains, keyed by
        # the new interval, with a live subscription.
        assert len(router._cohorts) == 1
        (cohort,) = router._cohorts.values()
        assert cohort.wheel.interval_s == interval
        assert cohort.wheel.subscriber_count == 1
        assert list(cohort.members) == [pna.pna_id]
    start = system.sim.now
    system.sim.run(until=start + 9.5)
    assert pna.heartbeats_sent == 3  # final 3s timetable: +3, +6, +9


def test_interval_churn_mid_cycle_preserves_shared_cohort_peers():
    """Cohort keys include the join phase: a member re-keyed mid-cycle
    joins (or founds) the cohort at ``fmod(now, I)`` and must not drag
    peers with congruent intervals but different phases along."""
    import math

    system = build_system(n_pnas=4, heartbeat_interval_s=12.0)
    router = system.router
    mover = system.pnas[3]

    def flip():
        mover.heartbeat_interval_s = 12.0
        mover._restart_heartbeat()  # same interval, new phase

    system.sim.schedule_at(5.0, flip)
    system.sim.run(until=5.5)
    assert len(router._cohorts) == 2
    phases = sorted(key[2] for key in router._cohorts)
    assert phases == [0.0, pytest.approx(math.fmod(5.0, 12.0))]
    system.sim.run(until=29.5)
    # Peers kept the t=12,24 timetable; the mover beats at 17, 29.
    assert all(p.heartbeats_sent == 2 for p in system.pnas[:3])
    assert mover.heartbeats_sent == 2


def test_batched_census_matches_during_job():
    """With a job running, the controller's busy/idle census tracks the
    fleet exactly as with per-message heartbeats (states ride in the
    same payloads, just delivered in batches)."""
    system = build_system(n_pnas=8, heartbeat_interval_s=20.0)
    job = uniform_bag(100, image_bits=1e6, ref_seconds=500.0)
    system.provider.submit_job(job, target_size=8,
                               heartbeat_interval_s=20.0)
    system.sim.run(until=50.0)
    assert system.busy_count() == 8
    busy_in_registry = sum(
        1 for (_seen, state, _iid) in system.controller.registry.values()
        if state is PNAState.BUSY)
    assert busy_in_registry == 8
