"""Differential tests: cohort task engine ≡ per-PNA reference path.

The macro engine (repro.core.taskloop) re-implements the DVE client
loop and the Backend's dispatch tier in columnar batches; these tests
drive the same seeded scenarios through both implementations and
require identical semantics — job report (makespan bit-equal), task
accounting, per-link byte/delivery/drop counters, node counters and
telemetry traces.

Trace comparison uses a canonical same-instant sort: within one sim
instant the two paths may interleave independent emitters differently
(per-member deliveries vs one bucket), but the multiset of events per
instant — including order-sensitive fields like each completion's
``done`` count — must match exactly.
"""

import pytest

from repro.core import OddCISystem
from repro.core.backend import Backend
from repro.core.dve import CONTROL_PAYLOAD_BITS as DVE_CONTROL_BITS
from repro.core.taskloop import (
    CONTROL_PAYLOAD_BITS as ENGINE_CONTROL_BITS,
    CohortDVE,
    resolve_task_path,
)
from repro.errors import ConfigurationError
from repro.telemetry.trace import Tracer, active
from repro.workloads import uniform_bag
from repro.workloads.job import reset_job_sequence


def _canonical(events):
    """Sort trace events by (time, category, name, fields) — stable
    across legitimate same-instant interleaving differences."""
    return sorted(
        (t, cat, name, tuple(sorted(fields.items())) if fields else ())
        for t, cat, name, fields in events)


def _run_cycle(task_path, *, seed=7, n_nodes=20, n_tasks=60,
               ref_seconds=4.0, input_bits=2e5, result_bits=1e5,
               delta_loss=0.0, lease_factor=None, replicate_tail=False,
               dve_poll_interval_s=5.0, executor=None, drain_s=120.0,
               trace=False):
    """One full recruit+job+dismantle cycle; returns the comparison dict."""
    reset_job_sequence()
    tracer = Tracer("all") if trace else None
    ctx = active(tracer) if tracer else _null_ctx()
    with ctx:
        system = OddCISystem(seed=seed, maintenance_interval_s=1e6,
                             delta_loss=delta_loss, task_path=task_path)
        system.add_pnas(n_nodes, heartbeat_interval_s=500.0,
                        dve_poll_interval_s=dve_poll_interval_s,
                        executor=executor)
        job = uniform_bag(n_tasks, ref_seconds=ref_seconds,
                          input_bits=input_bits, result_bits=result_bits)
        submission = system.provider.submit_job(
            job, target_size=n_nodes, lifetime_s=1e6,
            heartbeat_interval_s=500.0, lease_factor=lease_factor,
            replicate_tail=replicate_tail)
        backend = submission.backend
        report = system.provider.run_job_to_completion(submission,
                                                       limit_s=1e6)
        # Drain same-instant stragglers and the dismantle broadcast so
        # post-run state (duplicate counts, resets) is settled.
        system.sim.run(until=system.sim.now + drain_s)
    out = {
        "report": report,
        "makespan": report.makespan,  # bit-exact float compare
        "completed": dict(backend._completed),
        "duplicates": backend.duplicates,
        "requeues": backend.requeues,
        "replicas_issued": backend.replicas_issued,
        "tasks_assigned": backend.tasks_assigned,
        "undeliverable": system.router.undeliverable,
        "pna_counters": [
            (p.wakeups_accepted, p.resets_handled, p.heartbeats_sent)
            for p in system.pnas],
        "links": [
            (p.channel.uplink.delivered, p.channel.uplink.dropped,
             p.channel.uplink.refused, p.channel.uplink.bits_sent,
             p.channel.downlink.delivered, p.channel.downlink.dropped,
             p.channel.downlink.refused, p.channel.downlink.bits_sent)
            for p in system.pnas],
        "sim_time": system.sim.now,
    }
    if tracer:
        out["trace"] = _canonical(
            e for e in tracer.events() if e[1] != "kernel")
    return out


class _null_ctx:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _assert_equivalent(cfg):
    a = _run_cycle("process", **cfg)
    b = _run_cycle("cohort", **cfg)
    for key in a:
        assert a[key] == b[key], f"{key} diverged under {cfg}"


BASE_CONFIGS = [
    # plain FIFO, homogeneous fleet (vector dispatch fast path)
    dict(seed=7),
    # more tasks than one round; small cohort (scalar dispatch path)
    dict(seed=8, n_nodes=7, n_tasks=40),
    # leases tight enough to force requeues and duplicate results
    dict(seed=9, lease_factor=0.02, n_tasks=30, ref_seconds=8.0),
    # tail replication (general dispatch path + replica index)
    dict(seed=10, replicate_tail=True, lease_factor=5.0,
         n_nodes=12, n_tasks=18, ref_seconds=6.0),
    # lossy direct channels: retransmissions, timeout path, RNG order
    dict(seed=11, delta_loss=0.08, lease_factor=3.0,
         n_nodes=10, n_tasks=30, drain_s=400.0),
    # non-identity executor (slow devices; scalar compute times)
    dict(seed=12, executor=lambda ref: ref * 2.5, n_tasks=40),
]


@pytest.mark.parametrize("cfg", BASE_CONFIGS,
                         ids=lambda c: f"seed{c['seed']}")
def test_cohort_matches_process(cfg):
    _assert_equivalent(cfg)


@pytest.mark.parametrize("cfg", BASE_CONFIGS[:3],
                         ids=lambda c: f"seed{c['seed']}")
def test_cohort_matches_process_traced(cfg):
    _assert_equivalent({**cfg, "trace": True})


def test_fuzz_seed_sweep():
    """Randomised sweep: seeds drive fleet size, bag size, task shape,
    loss and fault-tolerance knobs through both paths."""
    import random

    for seed in range(40, 52):
        r = random.Random(seed)
        cfg = dict(
            seed=seed,
            n_nodes=r.randint(3, 25),
            n_tasks=r.randint(5, 80),
            ref_seconds=r.choice([0.5, 2.0, 7.5]),
            input_bits=r.choice([0.0, 4096.0, 3e5]),
            result_bits=r.choice([512.0, 1e5]),
            delta_loss=r.choice([0.0, 0.0, 0.05]),
            lease_factor=r.choice([None, 2.0, 0.05]),
            replicate_tail=r.choice([False, True]),
            dve_poll_interval_s=r.choice([2.0, 15.0]),
            drain_s=300.0,
        )
        _assert_equivalent(cfg)


# -- engine unit behaviour ----------------------------------------------------

def test_control_payload_bits_in_sync():
    # taskloop avoids importing dve (module cycle); the constant must
    # stay equal or wire accounting silently diverges.
    assert ENGINE_CONTROL_BITS == DVE_CONTROL_BITS


def test_resolve_task_path_env(monkeypatch):
    monkeypatch.delenv("REPRO_TASK_PATH", raising=False)
    assert resolve_task_path(None) == "cohort"
    assert resolve_task_path("process") == "process"
    monkeypatch.setenv("REPRO_TASK_PATH", "process")
    assert resolve_task_path(None) == "process"
    assert resolve_task_path("cohort") == "cohort"  # explicit wins
    monkeypatch.setenv("REPRO_TASK_PATH", "bogus")
    with pytest.raises(ConfigurationError):
        resolve_task_path(None)


def test_cohort_dve_validation_and_destroy():
    system = OddCISystem(seed=5, maintenance_interval_s=1e6,
                         task_path="cohort")
    system.add_pnas(2, heartbeat_interval_s=1e5, dve_poll_interval_s=5.0)
    job = uniform_bag(4, ref_seconds=1.0, image_bits=1e5)
    submission = system.provider.submit_job(job, target_size=2,
                                            lifetime_s=1e5,
                                            heartbeat_interval_s=1e5)
    system.sim.run(until=2.0)  # recruit; first polls in flight
    pna = system.pnas[0]
    dve = pna.dve
    assert isinstance(dve, CohortDVE)
    from repro.errors import OddCIError
    with pytest.raises(OddCIError):
        CohortDVE(dve._engine, pna, "i", "b", poll_interval_s=0)
    with pytest.raises(OddCIError):
        CohortDVE(dve._engine, pna, "i", "b", request_timeout_s=-1)
    dve.destroy()
    dve.destroy()  # idempotent
    assert dve.destroyed
    dve.on_backend_message("anything")  # must not raise
    completed_before = dve.tasks_completed
    system.sim.run(until=1e5)
    assert dve.tasks_completed == completed_before  # slot stays dead


def test_unregistered_backend_falls_back_to_process_path():
    """Wakeups naming a backend id with no cohort-capable server (test
    doubles, custom components) must run the reference DVE."""
    from repro.core import WakeupPayload, sign_control
    from repro.core.dve import DVE

    system = OddCISystem(seed=6, maintenance_interval_s=1e6,
                         task_path="cohort")
    system.add_pnas(1, heartbeat_interval_s=1e5, dve_poll_interval_s=5.0)
    pna = system.pnas[0]
    payload = WakeupPayload(instance_id="i-ghost", image_name="img",
                            image_bits=1e5, probability=1.0,
                            backend_id="ghost-backend")
    pna.deliver_control(payload,
                        sign_control(system.controller.key, payload))
    assert isinstance(pna.dve, DVE)
    assert not isinstance(pna.dve, CohortDVE)


def test_engine_reused_within_instance_fresh_across_backends():
    system = OddCISystem(seed=13, maintenance_interval_s=1e6,
                         task_path="cohort")
    system.add_pnas(6, heartbeat_interval_s=1e5, dve_poll_interval_s=5.0)
    job = uniform_bag(12, ref_seconds=1.0)
    submission = system.provider.submit_job(job, target_size=6,
                                            lifetime_s=1e6,
                                            heartbeat_interval_s=1e5)
    system.provider.run_job_to_completion(submission, limit_s=1e6)
    engines = set(system.router._task_engines.values())
    assert len(engines) == 1
    (engine,) = engines
    assert engine.members_joined == 6


def test_replica_candidate_heap_matches_scan():
    """Parity oracle for the replica-candidate index: under a seeded
    requeue/replication workload, the heap pick must equal the full
    in-flight scan at every request."""
    import random

    from repro.sim.core import Simulator
    from repro.core.network import Router

    r = random.Random(99)
    for trial in range(30):
        sim = Simulator(seed=trial)
        router = Router(sim)
        job = uniform_bag(r.randint(4, 12), ref_seconds=2.0)
        backend = Backend(sim, job, router, backend_id=f"b{trial}",
                          lease_factor=2.0, replicate_tail=True,
                          max_replicas=r.choice([2, 3]))
        workers = [f"w{i}" for i in range(r.randint(2, 6))]
        for step in range(60):
            sim.run(until=sim.now + r.uniform(0.1, 5.0))
            requester = r.choice(workers)
            expected = backend._pick_replica_candidate_scan(requester)
            got = backend._pick_replica_candidate(requester)
            assert (None if got is None else got.task_id) == \
                (None if expected is None else expected.task_id), \
                f"trial {trial} step {step}"
            # Drive the real state machine so the index sees pops,
            # requeues and completions.
            reply = backend._serve_request(requester,
                                           instance_id="i-parity")
            if hasattr(reply, "task_id") and r.random() < 0.6:
                backend.receive_result(requester, reply.task_id)
        backend.shutdown()
