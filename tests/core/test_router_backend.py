"""Unit tests for the Router and the Backend's scheduling logic."""

import pytest

from repro.core import Backend, Router, TaskRequest, TaskResultPayload
from repro.core.dve import CONTROL_PAYLOAD_BITS
from repro.core.messages import NoWork, TaskAssignment
from repro.errors import BackendError, NetworkError
from repro.net import DuplexChannel, Message
from repro.sim import Simulator
from repro.workloads import uniform_bag


# -- Router ---------------------------------------------------------------

def test_router_component_registration():
    sim = Simulator()
    router = Router(sim)
    router.register_component("c", lambda msg: None)
    with pytest.raises(NetworkError):
        router.register_component("c", lambda msg: None)
    router.unregister_component("c")
    router.register_component("c", lambda msg: None)


def test_router_pna_registration_and_routing():
    sim = Simulator()
    router = Router(sim)
    received = []
    router.register_component("backend", received.append)
    ch = DuplexChannel(sim, rate_bps=1e6)
    down = []
    router.register_pna("p1", ch, down.append)
    with pytest.raises(NetworkError):
        router.register_pna("p1", ch, down.append)

    router.send_from_pna("p1", "backend", {"x": 1}, 100)
    sim.run()
    assert len(received) == 1
    assert received[0].sender == "p1"

    router.send_to_pna("backend", "p1", {"y": 2}, 100)
    sim.run()
    assert len(down) == 1
    assert down[0].payload == {"y": 2}


def test_router_unknown_pna_raises():
    sim = Simulator()
    router = Router(sim)
    with pytest.raises(NetworkError):
        router.send_from_pna("ghost", "backend", None, 0)
    with pytest.raises(NetworkError):
        router.send_to_pna("backend", "ghost", None, 0)
    assert not router.has_pna("ghost")


def test_router_unknown_recipient_counted():
    sim = Simulator()
    router = Router(sim)
    ch = DuplexChannel(sim, rate_bps=1e6)
    router.register_pna("p1", ch, lambda m: None)
    router.send_from_pna("p1", "nobody", None, 10)
    sim.run()
    assert router.undeliverable == 1


# -- Backend ------------------------------------------------------------------

class FakePNA:
    """Minimal harness standing in for a PNA + DVE."""

    def __init__(self, sim, router, pna_id):
        self.sim = sim
        self.router = router
        self.pna_id = pna_id
        self.inbox = []
        ch = DuplexChannel(sim, rate_bps=1e9)
        router.register_pna(pna_id, ch, lambda m: self.inbox.append(m))

    def request(self, instance_id="i-1"):
        self.router.send_from_pna(
            self.pna_id, "backend",
            TaskRequest(pna_id=self.pna_id, instance_id=instance_id),
            CONTROL_PAYLOAD_BITS)

    def complete(self, task_id):
        self.router.send_from_pna(
            self.pna_id, "backend",
            TaskResultPayload(pna_id=self.pna_id, task_id=task_id),
            CONTROL_PAYLOAD_BITS)

    def last_payload(self):
        return self.inbox[-1].payload if self.inbox else None


def make_backend(sim, router, n_tasks=4, **kwargs):
    job = uniform_bag(n_tasks, image_bits=1e6, input_bits=1000,
                      ref_seconds=10.0, result_bits=500)
    return Backend(sim, job, router, **kwargs), job


def test_backend_assigns_tasks_in_order():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(sim, router, n_tasks=3)
    pna = FakePNA(sim, router, "p1")
    pna.request()
    sim.run()
    a = pna.last_payload()
    assert isinstance(a, TaskAssignment)
    assert a.task_id == 0
    assert backend.in_flight_count == 1
    assert backend.pending_count == 2


def test_backend_nowork_when_empty_but_running():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(sim, router, n_tasks=1)
    p1 = FakePNA(sim, router, "p1")
    p2 = FakePNA(sim, router, "p2")
    p1.request()
    sim.run()
    p2.request()
    sim.run()
    reply = p2.last_payload()
    assert isinstance(reply, NoWork)
    assert reply.retry_after_s is not None  # job not done: poll again


def test_backend_nowork_final_after_completion():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(sim, router, n_tasks=1)
    p1 = FakePNA(sim, router, "p1")
    p1.request()
    sim.run()
    p1.complete(0)
    sim.run()
    assert backend.done
    p1.request()
    sim.run()
    reply = p1.last_payload()
    assert isinstance(reply, NoWork) and reply.retry_after_s is None


def test_backend_done_event_carries_report():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(sim, router, n_tasks=2)
    p = FakePNA(sim, router, "p1")
    for tid in (0, 1):
        p.request()
        sim.run()
        p.complete(tid)
        sim.run()
    report = backend.done_event.value
    assert report.n_tasks == 2
    assert report.distinct_workers == 1
    assert report.makespan > 0
    assert backend.report().makespan == report.makespan


def test_backend_report_before_done_raises():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make_backend(sim, router)
    with pytest.raises(BackendError):
        backend.report()


def test_backend_duplicate_results_deduplicated():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(sim, router, n_tasks=1)
    p = FakePNA(sim, router, "p1")
    p.request()
    sim.run()
    p.complete(0)
    p.complete(0)
    sim.run()
    assert backend.completed_count == 1
    assert backend.duplicates == 1


def test_backend_unexpected_payload_raises():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make_backend(sim, router)
    with pytest.raises(BackendError):
        backend._receive(Message(sender="x", recipient="backend",
                                 payload="garbage"))


def test_backend_lease_requeues_expired_assignment():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(
        sim, router, n_tasks=1, lease_factor=0.001,
        lease_check_interval_s=5.0)
    p1 = FakePNA(sim, router, "p1")
    p1.request()
    sim.run(until=1.0)
    assert backend.in_flight_count == 1
    sim.run(until=100.0)  # lease expires -> requeue
    assert backend.pending_count == 1
    assert backend.requeues == 1
    # Another node can now pick it up and finish the job.
    p2 = FakePNA(sim, router, "p2")
    p2.request()
    sim.run(until=101.0)
    p2.complete(0)
    sim.run(until=102.0)
    assert backend.done


def test_backend_result_after_requeue_accepted_once():
    sim = Simulator()
    router = Router(sim)
    backend, job = make_backend(
        sim, router, n_tasks=1, lease_factor=0.001,
        lease_check_interval_s=5.0)
    p1 = FakePNA(sim, router, "p1")
    p1.request()
    sim.run(until=50.0)  # assignment requeued by now
    assert backend.requeues == 1
    p1.complete(0)  # original worker finishes anyway
    sim.run(until=60.0)
    assert backend.done
    assert backend.pending_count == 0  # requeued copy cancelled


def test_backend_validation():
    sim = Simulator()
    router = Router(sim)
    job = uniform_bag(1)
    with pytest.raises(BackendError):
        Backend(sim, job, router, lease_factor=0)
    with pytest.raises(BackendError):
        Backend(sim, job, router, worst_case_slowdown=0)
    with pytest.raises(BackendError):
        Backend(sim, job, router, poll_interval_s=0)


def test_backend_shutdown_unregisters():
    sim = Simulator()
    router = Router(sim)
    backend, _ = make_backend(sim, router, lease_factor=2.0)
    backend.shutdown()
    p = FakePNA(sim, router, "p1")
    p.request()
    sim.run()
    assert router.undeliverable == 1
