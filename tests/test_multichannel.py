"""Tests for multi-channel OddCI-DTV (Section 4.3 scale-out)."""

import pytest

from repro.dtv_oddci import (
    FanoutControlPlane,
    MultiChannelOddCIDTVSystem,
)
from repro.errors import ConfigurationError
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.workloads import uniform_bag


def build(n_channels=3, n_receivers=9, **kwargs):
    system = MultiChannelOddCIDTVSystem(
        n_channels, seed=31, maintenance_interval_s=100.0,
        pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(n_receivers, heartbeat_interval_s=50.0,
                         dve_poll_interval_s=10.0, **kwargs)
    return system


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        MultiChannelOddCIDTVSystem(0)
    with pytest.raises(ConfigurationError):
        FanoutControlPlane([])


def test_receivers_distributed_over_channels():
    system = build(n_channels=3, n_receivers=60)
    counts = system.audience_per_channel()
    assert sum(counts) == 60
    assert all(c > 5 for c in counts)  # roughly uniform


def test_channel_weights_respected():
    system = MultiChannelOddCIDTVSystem(
        2, seed=5, maintenance_interval_s=100.0,
        pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(200, channel_weights=[9.0, 1.0],
                         heartbeat_interval_s=50.0)
    counts = system.audience_per_channel()
    assert counts[0] > 150 and counts[1] < 50


def test_bad_channel_weights_rejected():
    system = MultiChannelOddCIDTVSystem(2, seed=5)
    with pytest.raises(ConfigurationError):
        system.add_receivers(10, channel_weights=[1.0])
    with pytest.raises(ConfigurationError):
        system.add_receivers(10, channel_weights=[0.0, 0.0])
    with pytest.raises(ConfigurationError):
        system.add_receivers(0)


def test_xlets_autostart_on_every_channel():
    system = build(n_channels=3, n_receivers=9)
    system.sim.run(until=60.0)
    assert system.online_count() == 9


def test_wakeup_reaches_union_of_audiences():
    """One wakeup recruits receivers across all channels — the paper's
    multi-channel scale-out."""
    system = build(n_channels=3, n_receivers=12)
    system.sim.run(until=60.0)
    job = uniform_bag(2000, image_bits=MEGABYTE, ref_seconds=200.0)
    system.provider.submit_job(job, target_size=12,
                               heartbeat_interval_s=50.0)
    system.sim.run(until=400.0)
    assert system.busy_count() == 12
    # Busy receivers span more than one channel.
    busy_channels = set()
    for stb in system.boxes:
        pna = system._pna_of_stb[stb.stb_id]
        if pna.online and pna.instance_id is not None:
            busy_channels.add(system.services.index(stb.service))
    assert len(busy_channels) >= 2


def test_job_completes_across_channels():
    system = build(n_channels=2, n_receivers=6)
    system.sim.run(until=60.0)
    job = uniform_bag(12, image_bits=MEGABYTE, ref_seconds=2.0)
    submission = system.provider.submit_job(job, target_size=6,
                                            heartbeat_interval_s=50.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.n_tasks == 12
    assert report.distinct_workers >= 4


def test_reset_dismantles_on_all_channels():
    system = build(n_channels=2, n_receivers=6)
    system.sim.run(until=60.0)
    job = uniform_bag(5000, image_bits=MEGABYTE, ref_seconds=500.0,
                      name="mc-image")
    submission = system.provider.submit_job(job, target_size=6,
                                            heartbeat_interval_s=50.0,
                                            release_on_completion=False)
    system.sim.run(until=400.0)
    assert system.busy_count() == 6
    system.provider.release(submission.instance_id)
    system.sim.run(until=800.0)
    assert system.busy_count() == 0
    for plane in system.planes:
        assert "mc-image" not in plane.carousel.file_names
