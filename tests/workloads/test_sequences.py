"""Tests for synthetic sequence generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    decode,
    encode,
    mutate,
    plant_homolog,
    random_database,
    random_dna,
)


def test_encode_decode_roundtrip():
    seq = "ACGTACGTTTGA"
    assert decode(encode(seq)) == seq


def test_encode_lowercase_accepted():
    assert decode(encode("acgt")) == "ACGT"


def test_encode_invalid_character():
    with pytest.raises(WorkloadError):
        encode("ACGX")


def test_decode_invalid_codes():
    with pytest.raises(WorkloadError):
        decode(np.array([0, 5], dtype=np.uint8))


def test_random_dna_properties():
    rng = np.random.default_rng(0)
    seq = random_dna(10_000, rng)
    assert seq.size == 10_000
    assert seq.dtype == np.uint8
    counts = np.bincount(seq, minlength=4)
    # roughly uniform base composition
    assert all(2000 < c < 3000 for c in counts)
    with pytest.raises(WorkloadError):
        random_dna(0, rng)


def test_mutate_rate_zero_is_identity():
    rng = np.random.default_rng(0)
    seq = random_dna(100, rng)
    out = mutate(seq, 0.0, rng)
    assert np.array_equal(out, seq)
    assert out is not seq  # still a copy


def test_mutate_changes_expected_fraction():
    rng = np.random.default_rng(1)
    seq = random_dna(100_000, rng)
    out = mutate(seq, 0.1, rng)
    frac = float(np.mean(out != seq))
    assert 0.08 < frac < 0.12


def test_mutate_always_changes_base():
    """A mutated position never keeps its original base."""
    rng = np.random.default_rng(2)
    seq = random_dna(10_000, rng)
    out = mutate(seq, 1.0, rng)
    assert not np.any(out == seq)


def test_mutate_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkloadError):
        mutate(random_dna(10, rng), 1.5, rng)


def test_random_database():
    rng = np.random.default_rng(0)
    db = random_database(5, 200, rng)
    assert len(db) == 5
    assert all(s.size == 200 for s in db)
    with pytest.raises(WorkloadError):
        random_database(0, 10, rng)


def test_plant_homolog_embeds_similar_copy():
    rng = np.random.default_rng(3)
    db = random_database(4, 500, rng)
    query = random_dna(80, rng)
    idx, pos = plant_homolog(db, query, rng, mutation_rate=0.05)
    planted = db[idx][pos:pos + 80]
    identity = float(np.mean(planted == query))
    assert identity > 0.85


def test_plant_homolog_explicit_location():
    rng = np.random.default_rng(4)
    db = random_database(3, 100, rng)
    query = random_dna(20, rng)
    idx, pos = plant_homolog(db, query, rng, seq_index=2, position=10,
                             mutation_rate=0.0)
    assert (idx, pos) == (2, 10)
    assert np.array_equal(db[2][10:30], query)


def test_plant_homolog_validation():
    rng = np.random.default_rng(0)
    db = random_database(2, 50, rng)
    q = random_dna(80, rng)  # longer than sequences
    with pytest.raises(WorkloadError):
        plant_homolog(db, q, rng)
    with pytest.raises(WorkloadError):
        plant_homolog([], random_dna(5, rng), rng)
    with pytest.raises(WorkloadError):
        plant_homolog(db, random_dna(10, rng), rng, seq_index=9)
    with pytest.raises(WorkloadError):
        plant_homolog(db, random_dna(10, rng), rng, position=45)


@given(st.text(alphabet="ACGT", min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_property_encode_decode_roundtrip(s):
    assert decode(encode(s)) == s
