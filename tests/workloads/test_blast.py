"""Tests for the mini-BLAST kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    BlastDatabase,
    BlastParams,
    BlastResult,
    encode,
    mutate,
    plant_homolog,
    random_database,
    random_dna,
    search,
    smith_waterman,
)
from repro.workloads.blast import _pack_words


# -- word packing -------------------------------------------------------------

def test_pack_words_values():
    # "ACGT" with k=2: AC=0*4+1=1, CG=1*4+2=6, GT=2*4+3=11
    codes = encode("ACGT")
    words = _pack_words(codes, 2)
    assert words.tolist() == [1, 6, 11]


def test_pack_words_short_sequence():
    assert _pack_words(encode("AC"), 3).size == 0


def test_pack_words_count():
    codes = encode("A" * 100)
    assert _pack_words(codes, 8).size == 93


# -- params / database validation --------------------------------------------

def test_params_validation():
    with pytest.raises(WorkloadError):
        BlastParams(word_size=1)
    with pytest.raises(WorkloadError):
        BlastParams(word_size=16)
    with pytest.raises(WorkloadError):
        BlastParams(match=0)
    with pytest.raises(WorkloadError):
        BlastParams(mismatch=1)
    with pytest.raises(WorkloadError):
        BlastParams(xdrop=0)
    with pytest.raises(WorkloadError):
        BlastParams(min_score=0)
    with pytest.raises(WorkloadError):
        BlastParams(gap_open=1)
    with pytest.raises(WorkloadError):
        BlastParams(band=0)


def test_database_validation():
    with pytest.raises(WorkloadError):
        BlastDatabase([])
    with pytest.raises(WorkloadError):
        BlastDatabase([np.zeros((2, 2), dtype=np.uint8)])
    rng = np.random.default_rng(0)
    db = BlastDatabase(random_database(3, 100, rng), word_size=8)
    assert db.total_bases == 300


def test_word_size_mismatch_rejected():
    rng = np.random.default_rng(0)
    db = BlastDatabase(random_database(1, 100, rng), word_size=8)
    with pytest.raises(WorkloadError):
        search(db, random_dna(50, rng), BlastParams(word_size=6))


def test_query_shorter_than_word_rejected():
    rng = np.random.default_rng(0)
    db = BlastDatabase(random_database(1, 100, rng), word_size=8)
    with pytest.raises(WorkloadError):
        search(db, random_dna(5, rng))


# -- exact and homologous matches -----------------------------------------------

def test_exact_substring_found_with_full_score():
    rng = np.random.default_rng(1)
    db_seqs = random_database(3, 400, rng)
    query = db_seqs[1][100:160].copy()  # exact substring
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query)
    assert result.hsps, "exact substring must be found"
    best = result.best
    assert best.seq_index == 1
    assert best.score >= 60  # 60 matching bases * match score 1
    assert best.s_start <= 100 and best.s_end >= 160 or (
        best.s_start >= 95 and best.s_end <= 165)


def test_planted_homolog_found():
    rng = np.random.default_rng(2)
    db_seqs = random_database(5, 600, rng)
    query = random_dna(100, rng)
    idx, pos = plant_homolog(db_seqs, query, rng, mutation_rate=0.03)
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query)
    assert result.best is not None
    assert result.best.seq_index == idx
    # Alignment must overlap the planted region.
    assert result.best.s_start < pos + 100 and result.best.s_end > pos


def test_unrelated_query_scores_low():
    rng = np.random.default_rng(3)
    db = BlastDatabase(random_database(3, 500, rng), word_size=10)
    query = random_dna(100, rng)
    result = search(db, query, BlastParams(word_size=10, min_score=25))
    # With word size 10 and random data, long high-scoring HSPs are
    # vanishingly unlikely.
    assert all(h.score < 40 for h in result.hsps)


def test_hsps_sorted_by_score_desc():
    rng = np.random.default_rng(4)
    db_seqs = random_database(4, 500, rng)
    query = random_dna(80, rng)
    plant_homolog(db_seqs, query, rng, seq_index=0, mutation_rate=0.02)
    plant_homolog(db_seqs, query, rng, seq_index=2, mutation_rate=0.15)
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query)
    scores = [h.score for h in result.hsps]
    assert scores == sorted(scores, reverse=True)
    assert result.best.seq_index == 0  # less-mutated copy wins


def test_work_units_grow_with_database_size():
    rng = np.random.default_rng(5)
    query = random_dna(60, rng)
    small = BlastDatabase(random_database(2, 300, rng), word_size=8)
    large = BlastDatabase(random_database(20, 3000, rng), word_size=8)
    w_small = search(small, query).work_units
    w_large = search(large, query).work_units
    assert w_large > w_small
    assert search(small, query).ref_seconds() > 0


def test_result_counters_populated():
    rng = np.random.default_rng(6)
    db_seqs = random_database(2, 400, rng)
    query = db_seqs[0][50:120].copy()
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query)
    assert result.seeds_examined >= 1
    assert result.extensions_run >= 1
    assert result.work_units > result.seeds_examined


def test_empty_result_best_is_none():
    r = BlastResult()
    assert r.best is None


# -- smith-waterman -----------------------------------------------------------

def test_sw_identical_sequences():
    params = BlastParams()
    seq = encode("ACGTACGTAC")
    score, cells = smith_waterman(seq, seq, params)
    assert score == 10 * params.match
    assert cells == 100


def test_sw_no_similarity_zero_floor():
    params = BlastParams()
    score, _ = smith_waterman(encode("AAAAAAAA"), encode("CCCCCCCC"), params)
    assert score == 0


def test_sw_local_alignment_ignores_flanks():
    params = BlastParams()
    a = encode("TTTT" + "ACGTACGT" + "TTTT")
    b = encode("GGGG" + "ACGTACGT" + "GGGG")
    score, _ = smith_waterman(a, b, params)
    assert score >= 8 * params.match


def test_sw_gap_bridging():
    """A single insertion should not break the alignment when gaps are
    cheaper than the flanking matches are valuable."""
    params = BlastParams(gap_open=-2, gap_extend=-1)
    a = encode("ACGTACGTACGT")
    b = encode("ACGTAACGTACGT")  # one inserted A
    score, _ = smith_waterman(a, b, params)
    assert score >= 12 * params.match + params.gap_open


def test_sw_empty_rejected():
    with pytest.raises(WorkloadError):
        smith_waterman(np.array([], dtype=np.uint8), encode("ACGT"),
                       BlastParams())


def test_gapped_search_refines_hsps():
    rng = np.random.default_rng(7)
    db_seqs = random_database(2, 400, rng)
    query = db_seqs[1][100:180].copy()
    db = BlastDatabase(db_seqs, word_size=8)
    ungapped = search(db, query, BlastParams(word_size=8))
    gapped = search(db, query, BlastParams(word_size=8, gapped=True))
    assert gapped.best is not None and gapped.best.gapped
    assert gapped.best.score >= ungapped.best.score
    assert gapped.work_units > ungapped.work_units


# -- properties ----------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_self_search_always_finds_self(seed):
    """A query cut from the database always finds itself with a score of
    at least its length (match=1)."""
    rng = np.random.default_rng(seed)
    db_seqs = random_database(2, 300, rng)
    start = int(rng.integers(0, 200))
    query = db_seqs[0][start:start + 60].copy()
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query)
    assert result.best is not None
    hit = next(h for h in result.hsps if h.seq_index == 0)
    assert hit.score >= 60  # full-length exact match


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_hsp_ranges_within_bounds(seed):
    rng = np.random.default_rng(seed)
    db_seqs = random_database(3, 250, rng)
    query = random_dna(70, rng)
    plant_homolog(db_seqs, query, rng, mutation_rate=0.1)
    db = BlastDatabase(db_seqs, word_size=7)
    result = search(db, query, BlastParams(word_size=7))
    for h in result.hsps:
        assert 0 <= h.q_start < h.q_end <= query.size
        subject = db.sequences[h.seq_index]
        assert 0 <= h.s_start < h.s_end <= subject.size
        assert h.length == h.q_end - h.q_start
        # Ungapped HSPs lie on a single diagonal.
        assert (h.s_end - h.s_start) == (h.q_end - h.q_start)
