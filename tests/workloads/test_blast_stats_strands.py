"""Tests for Karlin–Altschul statistics and both-strand search."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    BlastDatabase,
    BlastParams,
    bit_score,
    compute_lambda,
    decode,
    encode,
    evalue,
    karlin_altschul,
    plant_homolog,
    random_database,
    random_dna,
    reverse_complement,
    search,
    search_both_strands,
    significant,
)


# -- reverse complement ---------------------------------------------------------

def test_reverse_complement_known_sequence():
    assert decode(reverse_complement(encode("ACGT"))) == "ACGT"  # palindrome
    assert decode(reverse_complement(encode("AACC"))) == "GGTT"
    assert decode(reverse_complement(encode("A"))) == "T"


def test_reverse_complement_is_involution():
    rng = np.random.default_rng(0)
    seq = random_dna(500, rng)
    assert np.array_equal(reverse_complement(reverse_complement(seq)), seq)


def test_reverse_complement_validation():
    with pytest.raises(WorkloadError):
        reverse_complement(np.array([7], dtype=np.uint8))


@given(st.text(alphabet="ACGT", min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_property_revcomp_involution(s):
    codes = encode(s)
    assert decode(reverse_complement(reverse_complement(codes))) == s


# -- lambda / KA parameters ---------------------------------------------------------

def test_lambda_known_value_plus1_minus3():
    """NCBI tabulates lambda ~ 1.374 for +1/-3 at uniform composition."""
    lam = compute_lambda(1, -3)
    assert lam == pytest.approx(1.374, abs=0.01)


def test_lambda_satisfies_defining_equation():
    lam = compute_lambda(2, -3)
    p_match, p_mismatch = 0.25, 0.75
    total = p_match * math.exp(lam * 2) + p_mismatch * math.exp(lam * -3)
    assert total == pytest.approx(1.0, abs=1e-9)


def test_lambda_validation():
    with pytest.raises(WorkloadError):
        compute_lambda(0, -3)
    with pytest.raises(WorkloadError):
        compute_lambda(1, 0)
    with pytest.raises(WorkloadError):
        compute_lambda(1, -3, frequencies=(0.5, 0.6))
    with pytest.raises(WorkloadError):
        compute_lambda(3, -1)  # positive expected score


def test_karlin_altschul_params_positive():
    ka = karlin_altschul(BlastParams())
    assert ka.lam > 0 and ka.k > 0


# -- evalue / bit score ----------------------------------------------------------------

def test_evalue_monotone_decreasing_in_score():
    ka = karlin_altschul(BlastParams())
    es = [evalue(s, 100, 10_000, ka) for s in (10, 20, 30, 40)]
    assert es == sorted(es, reverse=True)


def test_evalue_scales_with_search_space():
    ka = karlin_altschul(BlastParams())
    small = evalue(25, 100, 1_000, ka)
    large = evalue(25, 100, 100_000, ka)
    assert large == pytest.approx(100 * small)


def test_evalue_validation():
    ka = karlin_altschul(BlastParams())
    with pytest.raises(WorkloadError):
        evalue(10, 0, 100, ka)
    with pytest.raises(WorkloadError):
        evalue(-1, 10, 100, ka)


def test_bit_score_monotone():
    ka = karlin_altschul(BlastParams())
    assert bit_score(40, ka) > bit_score(20, ka)


def test_significance_separates_planted_from_chance():
    """A planted 80-base homolog is significant; the best chance hit in
    random data is not."""
    rng = np.random.default_rng(5)
    params = BlastParams(word_size=8)
    ka = karlin_altschul(params)

    db_seqs = random_database(5, 800, rng)
    query = random_dna(80, rng)
    plant_homolog(db_seqs, query, rng, mutation_rate=0.03)
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query, params)
    assert significant(result.best.score, 80, db.total_bases, ka)

    random_query = random_dna(80, rng)
    noise = search(db, random_query, params)
    if noise.best is not None:
        assert not significant(noise.best.score, 80, db.total_bases, ka)


def test_evalue_bound_on_random_hits():
    """Empirical count of chance HSPs >= S stays within a small factor of
    the Karlin-Altschul expectation (sanity, not a precise GOF test)."""
    rng = np.random.default_rng(6)
    params = BlastParams(word_size=6, min_score=8)
    ka = karlin_altschul(params)
    db = BlastDatabase(random_database(4, 500, rng), word_size=6)
    threshold = 14
    trials = 60
    observed = 0
    for _ in range(trials):
        q = random_dna(60, rng)
        result = search(db, q, params)
        observed += sum(1 for h in result.hsps if h.score >= threshold)
    expected_per_query = evalue(threshold, 60, db.total_bases, ka)
    assert observed <= max(10.0, 20 * expected_per_query * trials)


# -- both strands -----------------------------------------------------------------------

def test_minus_strand_homolog_found_only_by_both_strand_search():
    rng = np.random.default_rng(7)
    db_seqs = random_database(3, 600, rng)
    query = random_dna(90, rng)
    # Plant the *reverse complement* of the query.
    planted = reverse_complement(query)
    idx = 1
    db_seqs[idx][200:290] = planted
    db = BlastDatabase(db_seqs, word_size=8)

    forward_only = search(db, query)
    both = search_both_strands(db, query)
    strong_forward = [h for h in forward_only.hsps if h.score >= 60]
    assert not strong_forward  # invisible on the plus strand
    best = both.best
    assert best is not None
    assert best.strand == "-"
    assert best.seq_index == idx
    assert best.score >= 80


def test_both_strand_search_accumulates_work():
    rng = np.random.default_rng(8)
    db = BlastDatabase(random_database(2, 300, rng), word_size=8)
    q = random_dna(50, rng)
    single = search(db, q)
    both = search_both_strands(db, q)
    assert both.work_units > single.work_units
    assert both.seeds_examined >= single.seeds_examined


def test_plus_strand_hits_keep_plus_label():
    rng = np.random.default_rng(9)
    db_seqs = random_database(2, 400, rng)
    query = db_seqs[0][100:170].copy()
    db = BlastDatabase(db_seqs, word_size=8)
    both = search_both_strands(db, query)
    assert both.best.strand == "+"


def test_filter_significant_report():
    from repro.workloads import filter_significant

    rng = np.random.default_rng(11)
    params = BlastParams(word_size=8)
    db_seqs = random_database(4, 700, rng)
    query = random_dna(100, rng)
    plant_homolog(db_seqs, query, rng, seq_index=0, mutation_rate=0.02)
    plant_homolog(db_seqs, query, rng, seq_index=2, mutation_rate=0.10)
    db = BlastDatabase(db_seqs, word_size=8)
    result = search(db, query, params)
    report = filter_significant(result, 100, db.total_bases, params)
    assert len(report) >= 2
    evalues = [e for _h, e in report]
    assert evalues == sorted(evalues)
    assert all(e <= 1e-3 for e in evalues)
    # empty input
    from repro.workloads import BlastResult
    assert filter_significant(BlastResult(), 100, 1000, params) == []
