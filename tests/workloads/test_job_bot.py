"""Tests for the job model and bag-of-tasks generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.net.message import KILOBYTE, MEGABYTE
from repro.workloads import (
    Job,
    Task,
    bag_from_phi,
    lognormal_bag,
    parametric_bag,
    phi_of_job,
    uniform_bag,
)


# -- Task -----------------------------------------------------------------

def test_task_validation():
    with pytest.raises(WorkloadError):
        Task(task_id=-1, input_bits=0, ref_seconds=1, result_bits=0)
    with pytest.raises(WorkloadError):
        Task(task_id=0, input_bits=-1, ref_seconds=1, result_bits=0)
    with pytest.raises(WorkloadError):
        Task(task_id=0, input_bits=0, ref_seconds=0, result_bits=0)
    with pytest.raises(WorkloadError):
        Task(task_id=0, input_bits=0, ref_seconds=1, result_bits=-1)


def test_task_io_bits():
    t = Task(task_id=0, input_bits=100, ref_seconds=1, result_bits=50)
    assert t.io_bits == 150


# -- Job -----------------------------------------------------------------

def test_job_validation():
    t = Task(task_id=0, input_bits=0, ref_seconds=1, result_bits=0)
    with pytest.raises(WorkloadError):
        Job(image_bits=0, tasks=(t,))
    with pytest.raises(WorkloadError):
        Job(image_bits=1, tasks=())
    with pytest.raises(WorkloadError):
        Job(image_bits=1, tasks=(t, t))  # duplicate ids


def test_job_stats():
    tasks = tuple(Task(task_id=i, input_bits=100 * (i + 1), ref_seconds=i + 1,
                       result_bits=10)
                  for i in range(4))
    job = Job(image_bits=1e6, tasks=tasks)
    stats = job.stats()
    assert stats.n == 4
    assert stats.mean_input_bits == pytest.approx(250.0)
    assert stats.mean_ref_seconds == pytest.approx(2.5)
    assert stats.mean_result_bits == pytest.approx(10.0)
    assert stats.mean_io_bits == pytest.approx(260.0)
    assert job.total_ref_seconds() == pytest.approx(10.0)


def test_job_ids_unique():
    a = uniform_bag(2)
    b = uniform_bag(2)
    assert a.job_id != b.job_id


# -- generators -----------------------------------------------------------

def test_uniform_bag_shape():
    job = uniform_bag(10, input_bits=512, ref_seconds=2.0, result_bits=256)
    assert job.n == 10
    assert all(t.input_bits == 512 for t in job.tasks)
    assert all(t.ref_seconds == 2.0 for t in job.tasks)
    assert not job.is_parametric
    with pytest.raises(WorkloadError):
        uniform_bag(0)


def test_parametric_bag_has_no_inputs():
    job = parametric_bag(5)
    assert job.is_parametric
    assert all(t.input_bits == 0 for t in job.tasks)
    with pytest.raises(WorkloadError):
        parametric_bag(-1)


def test_lognormal_bag_mean_close_to_target():
    rng = np.random.default_rng(0)
    job = lognormal_bag(5000, rng, mean_ref_seconds=60.0, sigma=0.5)
    stats = job.stats()
    assert stats.mean_ref_seconds == pytest.approx(60.0, rel=0.05)
    assert all(t.ref_seconds > 0 for t in job.tasks)


def test_lognormal_bag_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkloadError):
        lognormal_bag(0, rng)
    with pytest.raises(WorkloadError):
        lognormal_bag(5, rng, mean_ref_seconds=0)
    with pytest.raises(WorkloadError):
        lognormal_bag(5, rng, sigma=-1)


def test_bag_from_phi_roundtrip():
    """phi_of_job recovers the Φ a bag was generated with."""
    delta = 150_000.0
    for phi in (1.0, 10.0, 1000.0, 1e5):
        job = bag_from_phi(100, phi, delta_bps=delta)
        assert phi_of_job(job, delta) == pytest.approx(phi)


def test_bag_from_phi_paper_examples():
    """Paper Section 5.2.2: with (s+r)=1 KB and delta=150 kbps,
    phi=1 gives p ~ 53-55 ms and phi=100000 gives p ~ 1.5 h."""
    delta = 150_000.0
    job1 = bag_from_phi(10, 1.0, delta_bps=delta, io_bits=KILOBYTE)
    p1 = job1.stats().mean_ref_seconds
    assert 0.05 < p1 < 0.06  # ~54.6 ms

    job2 = bag_from_phi(10, 1e5, delta_bps=delta, io_bits=KILOBYTE)
    p2 = job2.stats().mean_ref_seconds
    assert 5000 < p2 < 6000  # ~1.5 hours


def test_bag_from_phi_validation():
    with pytest.raises(WorkloadError):
        bag_from_phi(10, 0.0)
    with pytest.raises(WorkloadError):
        bag_from_phi(10, 1.0, delta_bps=0)
    with pytest.raises(WorkloadError):
        bag_from_phi(10, 1.0, io_bits=0)


def test_phi_of_job_validation():
    job = parametric_bag(3, result_bits=0.0) if False else None
    # zero-IO job cannot be built via parametric_bag(result_bits=0)?
    # It can: result_bits=0 and input_bits=0 -> io == 0.
    zero_io = Job(image_bits=1e6, tasks=(
        Task(task_id=0, input_bits=0, ref_seconds=1, result_bits=0),))
    with pytest.raises(WorkloadError):
        phi_of_job(zero_io, 150_000.0)
    with pytest.raises(WorkloadError):
        phi_of_job(uniform_bag(2), 0.0)
