"""Tests for the heavy-tailed Weibull bag generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import weibull_bag


def test_mean_matches_target():
    rng = np.random.default_rng(0)
    job = weibull_bag(20_000, rng, mean_ref_seconds=60.0, shape=0.7)
    assert job.stats().mean_ref_seconds == pytest.approx(60.0, rel=0.05)


def test_heavy_tail_present():
    """shape < 1: the maximum is many times the mean (unlike uniform)."""
    rng = np.random.default_rng(1)
    job = weibull_bag(5000, rng, mean_ref_seconds=10.0, shape=0.6)
    durations = [t.ref_seconds for t in job.tasks]
    assert max(durations) > 8 * np.mean(durations)


def test_shape_one_is_exponential_like():
    rng = np.random.default_rng(2)
    job = weibull_bag(20_000, rng, mean_ref_seconds=5.0, shape=1.0)
    durations = np.array([t.ref_seconds for t in job.tasks])
    # exponential: std ~ mean
    assert durations.std() == pytest.approx(durations.mean(), rel=0.1)


def test_all_durations_positive():
    rng = np.random.default_rng(3)
    job = weibull_bag(1000, rng, shape=0.5)
    assert all(t.ref_seconds > 0 for t in job.tasks)


def test_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(WorkloadError):
        weibull_bag(0, rng)
    with pytest.raises(WorkloadError):
        weibull_bag(5, rng, mean_ref_seconds=0)
    with pytest.raises(WorkloadError):
        weibull_bag(5, rng, shape=0)


def test_tail_replication_pays_off_on_weibull_bags():
    """End-to-end: heavy-tailed bags are where replication helps even on
    a homogeneous fleet (re-run of a stuck long task is pure waste, but
    replicating the tail-end stragglers trims the finish)."""
    from repro.core import OddCISystem

    def run(replicate):
        system = OddCISystem(seed=9, maintenance_interval_s=1e6)
        system.add_pnas(6, heartbeat_interval_s=1e5,
                        dve_poll_interval_s=2.0)
        rng = np.random.default_rng(4)
        job = weibull_bag(36, rng, image_bits=1e6, mean_ref_seconds=20.0,
                          shape=0.6, name=f"wb-{replicate}")
        submission = system.provider.submit_job(
            job, target_size=6, replicate_tail=replicate)
        return system.provider.run_job_to_completion(
            submission, limit_s=1e8).makespan

    base = run(False)
    repl = run(True)
    # Homogeneous fleet: replication cannot *hurt* the makespan beyond
    # protocol noise, and often helps.
    assert repl <= base * 1.05
