"""Tests for device profiles and churn traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import (
    AvailabilityTrace,
    ChurnModel,
    DeviceProfile,
    PowerMode,
    REFERENCE_PC,
    REFERENCE_STB,
    STB_IN_USE_OVER_PC,
    STB_IN_USE_OVER_STANDBY,
    generate_trace,
)


# -- DeviceProfile -----------------------------------------------------------

def test_reference_pc_is_unit():
    assert REFERENCE_PC.factor(PowerMode.IN_USE) == 1.0
    assert REFERENCE_PC.execution_time(10.0, PowerMode.STANDBY) == 10.0


def test_stb_calibration_matches_paper_ratios():
    in_use = REFERENCE_STB.factor(PowerMode.IN_USE)
    standby = REFERENCE_STB.factor(PowerMode.STANDBY)
    assert in_use == pytest.approx(STB_IN_USE_OVER_PC)
    assert in_use / standby == pytest.approx(STB_IN_USE_OVER_STANDBY)


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        DeviceProfile(name="x", slowdown=0)
    with pytest.raises(ConfigurationError):
        DeviceProfile(name="x", slowdown=1,
                      mode_factors={PowerMode.OFF: 1.0})
    with pytest.raises(ConfigurationError):
        DeviceProfile(name="x", slowdown=1,
                      mode_factors={PowerMode.IN_USE: -1.0})


def test_off_mode_cannot_compute():
    with pytest.raises(ConfigurationError):
        REFERENCE_STB.factor(PowerMode.OFF)
    with pytest.raises(ConfigurationError):
        REFERENCE_STB.execution_time(1.0, PowerMode.OFF)


def test_missing_mode_factor():
    p = DeviceProfile(name="x", slowdown=1,
                      mode_factors={PowerMode.STANDBY: 1.0})
    with pytest.raises(ConfigurationError):
        p.factor(PowerMode.IN_USE)


def test_negative_work_rejected():
    with pytest.raises(ConfigurationError):
        REFERENCE_PC.execution_time(-1.0, PowerMode.IN_USE)


# -- ChurnModel ---------------------------------------------------------------

def test_churn_validation():
    with pytest.raises(WorkloadError):
        ChurnModel(mean_on_s=0, mean_off_s=1)
    with pytest.raises(WorkloadError):
        ChurnModel(mean_on_s=1, mean_off_s=1, initial_on_probability=2.0)


def test_steady_state_availability():
    m = ChurnModel(mean_on_s=30, mean_off_s=10)
    assert m.steady_state_availability == pytest.approx(0.75)
    assert m.start_on_probability() == pytest.approx(0.75)
    m2 = ChurnModel(mean_on_s=30, mean_off_s=10, initial_on_probability=1.0)
    assert m2.start_on_probability() == 1.0


def test_sample_durations_positive():
    m = ChurnModel(mean_on_s=10, mean_off_s=5)
    rng = np.random.default_rng(0)
    ons = [m.sample_on(rng) for _ in range(100)]
    offs = [m.sample_off(rng) for _ in range(100)]
    assert all(x >= 0 for x in ons + offs)
    assert np.mean(ons) == pytest.approx(10, rel=0.5)


# -- AvailabilityTrace ---------------------------------------------------------

def test_trace_validation():
    with pytest.raises(WorkloadError):
        AvailabilityTrace(transitions=(5.0, 5.0), initial_on=True,
                          horizon=10.0)
    with pytest.raises(WorkloadError):
        AvailabilityTrace(transitions=(11.0,), initial_on=True, horizon=10.0)
    with pytest.raises(WorkloadError):
        AvailabilityTrace(transitions=(), initial_on=True, horizon=0.0)


def test_trace_is_on_alternates():
    tr = AvailabilityTrace(transitions=(2.0, 5.0), initial_on=True,
                           horizon=10.0)
    assert tr.is_on(0.0)
    assert tr.is_on(1.9)
    assert not tr.is_on(2.0)
    assert not tr.is_on(4.9)
    assert tr.is_on(5.0)
    assert tr.is_on(9.9)
    with pytest.raises(WorkloadError):
        tr.is_on(10.0)


def test_trace_on_fraction():
    tr = AvailabilityTrace(transitions=(2.0, 5.0), initial_on=True,
                           horizon=10.0)
    # on [0,2), off [2,5), on [5,10) -> 7/10
    assert tr.on_fraction() == pytest.approx(0.7)


def test_trace_segments_cover_horizon():
    tr = AvailabilityTrace(transitions=(2.0, 5.0), initial_on=False,
                           horizon=10.0)
    segs = list(tr.segments())
    assert segs == [(0.0, 2.0, False), (2.0, 5.0, True), (5.0, 10.0, False)]


def test_generate_trace_within_horizon():
    m = ChurnModel(mean_on_s=5, mean_off_s=5)
    rng = np.random.default_rng(1)
    tr = generate_trace(m, horizon=100.0, rng=rng)
    assert tr.horizon == 100.0
    assert all(0 <= t < 100.0 for t in tr.transitions)
    with pytest.raises(WorkloadError):
        generate_trace(m, horizon=0, rng=rng)


def test_generated_traces_match_steady_state():
    m = ChurnModel(mean_on_s=20, mean_off_s=10)
    rng = np.random.default_rng(2)
    fractions = [generate_trace(m, horizon=2000.0, rng=rng).on_fraction()
                 for _ in range(50)]
    assert np.mean(fractions) == pytest.approx(m.steady_state_availability,
                                               abs=0.05)


@given(
    trans=st.lists(st.floats(min_value=0.01, max_value=0.98),
                   unique=True, max_size=8),
    initial=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_property_on_fraction_consistent_with_is_on(trans, initial):
    tr = AvailabilityTrace(transitions=tuple(sorted(trans)),
                           initial_on=initial, horizon=1.0)
    # Riemann estimate of on_fraction from point queries.
    ts = np.linspace(0.0005, 0.9995, 2000)
    est = float(np.mean([tr.is_on(float(t)) for t in ts]))
    assert est == pytest.approx(tr.on_fraction(), abs=0.01)
