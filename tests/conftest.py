"""Shared test plumbing.

Tier-1 tests run by default.  Tests marked ``experiments`` execute every
registered scenario through the parallel runner at smoke scale — a
minutes-long sweep kept out of the default run; opt in with
``pytest --run-experiments`` (or ``make experiments``).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-experiments", action="store_true", default=False,
        help="run full smoke sweeps of every scenario "
             "(experiments marker)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-experiments"):
        return
    skip = pytest.mark.skip(
        reason="scenario sweep: pass --run-experiments to run")
    for item in items:
        # get_closest_marker, not `in item.keywords`: keywords also
        # contain package names, and tests/experiments/ is a package.
        if item.get_closest_marker("experiments") is not None:
            item.add_marker(skip)
