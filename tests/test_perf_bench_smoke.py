"""Tier-1 smoke test for the perf harness (tiny fleet — fast).

The full-scale scenarios live behind ``pytest benchmarks/ --run-perf``;
this just proves the harness machinery (both scenario families, report
merging, the CLI hook) stays importable and correct.
"""

import gc
import json

from repro.perfbench import (
    SCENARIO,
    run_kernel_scenario,
    run_scenario,
    write_report,
)


def test_oddci_scenario_smoke():
    metrics = run_scenario(20)
    assert metrics["n_nodes"] == 20
    assert metrics["n_tasks"] == 20 * SCENARIO["tasks_per_node"]
    assert metrics["distinct_workers"] == 20
    assert metrics["events"] > 0
    assert metrics["makespan"] > 0
    assert metrics["peak_heap"] > 0
    assert gc.isenabled()  # the gc guard restored collection


def test_kernel_scenario_smoke():
    metrics = run_kernel_scenario(50, horizon_s=5.0)
    # 50 timers x ~4-5 ticks inside the horizon, deterministic count.
    assert metrics["events"] == run_kernel_scenario(50, horizon_s=5.0)["events"]
    assert metrics["events"] >= 50 * 4
    assert gc.isenabled()


def test_write_report_merges_labels(tmp_path):
    path = str(tmp_path / "bench.json")
    write_report(path, {"oddci": {"20": {"events": 1}}, "kernel": {}},
                 "before")
    doc = write_report(path, {"oddci": {"20": {"events": 2}}, "kernel": {}},
                       "after", merge_into=path)
    assert doc["before"]["oddci"]["20"]["events"] == 1
    assert doc["after"]["oddci"]["20"]["events"] == 2
    with open(path) as fh:
        on_disk = json.load(fh)
    assert on_disk["scenario"]["seed"] == SCENARIO["seed"]
    assert "before" in on_disk and "after" in on_disk


def test_cli_bench_subcommand(tmp_path, capsys):
    from repro.cli import main
    out = str(tmp_path / "cli_bench.json")
    rc = main(["bench", "--scales", "10", "--kernel-scales", "20",
               "--out", out])
    assert rc == 0
    with open(out) as fh:
        doc = json.load(fh)
    assert "after" in doc
    assert doc["after"]["oddci"]["10"]["distinct_workers"] == 10
