"""Tier-1 determinism contract: ``--jobs N`` output is byte-identical
to serial execution.

Runs fig6, the a3 heartbeat ablation, the service sweep and the
vector_scale multi-job scenario at smoke scale with 1, 2 and 4 workers
and compares the persisted artifacts byte for byte.  The
parallel path really crosses the process boundary (ProcessPoolExecutor
workers re-import the registry), so this also guards the picklability
of the scenario call protocol.
"""

import os

import pytest

from repro.runner import ArtifactStore, Runner

SCENARIOS = ("fig6", "a3", "service_sweep", "vector_scale")


def _artifact_bytes(tmp_path, name, jobs, trace=None):
    root = tmp_path / f"jobs{jobs}"
    runner = Runner(jobs=jobs, seed=7, smoke=True, trace=trace,
                    store=ArtifactStore(root))
    result = runner.run(name)
    directory = root / name
    records = (directory / "records-smoke.json").read_bytes()
    rendered = (directory / "rendered-smoke.txt").read_bytes()
    return result, records, rendered


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("jobs", (2, 4))
def test_parallel_matches_serial_byte_for_byte(tmp_path, name, jobs):
    serial, serial_records, serial_rendered = _artifact_bytes(
        tmp_path, name, 1)
    par, par_records, par_rendered = _artifact_bytes(tmp_path, name, jobs)
    assert serial.records == par.records
    assert par_records == serial_records
    assert par_rendered == serial_rendered
    assert par.meta["jobs"] == jobs
    assert par.meta["n_records"] == serial.meta["n_records"] > 0


@pytest.mark.parametrize("name", SCENARIOS)
def test_task_paths_agree_byte_for_byte(tmp_path, name, monkeypatch):
    """The cohort task engine and the per-PNA reference path must
    persist byte-identical artifacts (REPRO_TASK_PATH differential),
    including under ``--jobs`` (workers inherit the environment)."""
    monkeypatch.setenv("REPRO_TASK_PATH", "process")
    _res, ref_records, ref_rendered = _artifact_bytes(
        tmp_path / "process", name, 1)
    monkeypatch.setenv("REPRO_TASK_PATH", "cohort")
    _res, coh_records, coh_rendered = _artifact_bytes(
        tmp_path / "cohort", name, 1)
    assert coh_records == ref_records
    assert coh_rendered == ref_rendered
    _res, par_records, par_rendered = _artifact_bytes(
        tmp_path / "cohort-jobs", name, 2)
    assert par_records == ref_records
    assert par_rendered == ref_rendered


@pytest.mark.parametrize("jobs", (2, 4))
def test_service_sweep_trace_and_metrics_are_jobs_invariant(
        tmp_path, jobs):
    """A traced service_sweep run persists byte-identical trace.jsonl
    and metrics.json for any ``--jobs`` — the ``serve`` category's
    request-lifecycle events ride the same per-point reset contract as
    records."""
    def traced_bytes(n_jobs):
        _res, records, _rendered = _artifact_bytes(
            tmp_path, "service_sweep", n_jobs, trace=True)
        directory = tmp_path / f"jobs{n_jobs}" / "service_sweep"
        return (records,
                (directory / "trace.jsonl").read_bytes(),
                (directory / "metrics.json").read_bytes())

    serial_records, serial_trace, serial_metrics = traced_bytes(1)
    par_records, par_trace, par_metrics = traced_bytes(jobs)
    assert b'"serve"' in serial_trace  # the new category really fires
    assert par_records == serial_records
    assert par_trace == serial_trace
    assert par_metrics == serial_metrics


@pytest.mark.experiments
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="wall-time speedup needs >= 4 cores; the "
                           "artifact metadata records cpu_count so "
                           "single-core runs stay honest")
def test_full_grid_parallel_speedup():
    # The fig6 full grid (44 independent event+vector simulations) must
    # cut wall time at least 2x with 4 workers on a multicore host.
    serial = Runner(jobs=1, seed=0).run("fig6")
    parallel = Runner(jobs=4, seed=0).run("fig6")
    assert serial.records == parallel.records
    assert parallel.meta["wall_time_s"] <= serial.meta["wall_time_s"] / 2
