"""Faulted runs obey the same ``--jobs`` byte-parity contract as clean
runs, and an *empty* fault plan is indistinguishable from faults off.

The fault injector draws all its randomness (jitters, storm victims)
from the per-point seeded ``"faults"`` RNG stream and schedules
everything on the kernel calendar, so the chaos timeline — and with it
records.json, trace.jsonl and metrics.json — must be byte-identical
for any worker count.
"""

import pytest

from repro.runner import ArtifactStore, Runner


def _artifacts(tmp_path, name, jobs, *, faults=None, trace=None):
    root = tmp_path / f"jobs{jobs}-{faults or 'clean'}"
    runner = Runner(jobs=jobs, seed=7, smoke=True, faults=faults,
                    trace=trace, store=ArtifactStore(root))
    result = runner.run(name)
    directory = root / name
    records = (directory / "records-smoke.json").read_bytes()
    trace_bytes = metrics_bytes = None
    if trace is not None:
        trace_bytes = (directory / "trace.jsonl").read_bytes()
        metrics_bytes = (directory / "metrics.json").read_bytes()
    return result, records, trace_bytes, metrics_bytes


@pytest.mark.parametrize("jobs", (2, 4))
def test_fault_sweep_parallel_matches_serial_byte_for_byte(tmp_path, jobs):
    serial = _artifacts(tmp_path, "fault_sweep", 1, trace="all")
    par = _artifacts(tmp_path, "fault_sweep", jobs, trace="all")
    assert par[1] == serial[1]  # records-smoke.json
    assert par[2] == serial[2]  # trace.jsonl
    assert par[3] == serial[3]  # metrics.json
    assert par[0].records == serial[0].records
    # The sweep really injected and recovered at intensity > 0.
    faulted = [r for r in serial[0].records if r["intensity"] > 0]
    assert faulted and all(r["faults_fired"] > 0 for r in faulted)
    assert all(r["completed"] for r in serial[0].records)
    metrics = serial[0].metrics
    assert metrics["counters"]["fault.injected"] > 0
    assert metrics["histograms"]["recovery.mttr_s"]["count"] > 0


def test_runner_faults_flag_is_jobs_invariant(tmp_path):
    """A stock scenario run under ``--faults=demo`` stays byte-parallel
    too — the injector's RNG stream rides the per-point seed."""
    serial = _artifacts(tmp_path, "a3", 1, faults="demo")
    par = _artifacts(tmp_path, "a3", 2, faults="demo")
    assert par[1] == serial[1]
    assert par[0].records == serial[0].records
    assert serial[0].meta["faults"] == "demo"


def test_empty_plan_is_byte_identical_to_faults_off(tmp_path):
    """``--faults=none`` must not perturb anything: no injector, no RNG
    draw, no trace events — output matches a run with faults disabled."""
    clean = _artifacts(tmp_path, "a3", 1, trace="all")
    empty = _artifacts(tmp_path, "a3", 1, faults="none", trace="all")
    assert empty[1] == clean[1]
    assert empty[2] == clean[2]
    assert empty[3] == clean[3]
    assert clean[0].meta["faults"] is None
    assert empty[0].meta["faults"] == "none"


def test_demo_faults_change_the_records(tmp_path):
    """Sanity check the parity tests bite: a non-empty plan visibly
    alters the faulted scenario's outcome."""
    clean = _artifacts(tmp_path, "a3", 1)
    faulted = _artifacts(tmp_path, "a3", 1, faults="demo")
    assert faulted[1] != clean[1]
