"""Scenario dataclass, registry and artifact-store behavior."""

import json

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.runner import (
    ArtifactStore,
    Runner,
    Scenario,
    all_scenarios,
    get_scenario,
    scenario_ids,
)
from repro.runner.artifacts import jsonify
from repro.runner.runner import RunResult
from repro.runner.scenario import _REGISTRY, register
from repro.sim.rng import spawn_seeds


def _point(x, *, scale=1.0, seed=0):
    return {"y": x * scale, "seed_used": seed}


def _render(records):
    return "\n".join(f"{r['x']} -> {r['y']}" for r in records)


def _scenario(**overrides):
    kwargs = dict(name="toy", description="toy scenario", point=_point,
                  renderer=_render, grid={"x": (1, 2, 3)})
    kwargs.update(overrides)
    return Scenario(**kwargs)


# -- Scenario validation ---------------------------------------------------

def test_scenario_rejects_empty_name():
    with pytest.raises(ScenarioError):
        _scenario(name="")


def test_scenario_rejects_non_callable_point():
    with pytest.raises(ScenarioError):
        _scenario(point="not-callable")


def test_scenario_is_frozen():
    s = _scenario()
    with pytest.raises(Exception):
        s.name = "other"


def test_points_order_is_grid_order():
    s = _scenario(grid={"x": (1, 2), "z": ("a", "b")})
    assert s.points() == [
        {"x": 1, "z": "a"}, {"x": 1, "z": "b"},
        {"x": 2, "z": "a"}, {"x": 2, "z": "b"},
    ]


def test_gridless_scenario_has_single_point():
    s = _scenario(grid={})
    assert s.points() == [{}]


def test_smoke_overrides_apply_on_top():
    s = _scenario(grid={"x": (1, 2, 3)}, fixed={"scale": 2.0},
                  smoke_grid={"x": (1,)}, smoke_fixed={"scale": 0.5})
    assert s.resolved_grid(smoke=False) == {"x": (1, 2, 3)}
    assert s.resolved_grid(smoke=True) == {"x": (1,)}
    assert s.resolved_fixed(smoke=True) == {"scale": 0.5}


# -- registry --------------------------------------------------------------

def test_register_rejects_duplicates():
    s = _scenario(name="dup-test-scenario")
    register(s)
    try:
        with pytest.raises(ScenarioError):
            register(_scenario(name="dup-test-scenario"))
    finally:
        _REGISTRY.pop("dup-test-scenario", None)


def test_get_scenario_unknown_name_lists_known():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        get_scenario("definitely-not-registered")


def test_registry_contains_all_experiments():
    assert set(scenario_ids()) >= {
        "table1", "table2", "table3", "wakeup", "fig6", "fig7",
        "a1", "a2", "a3", "a4", "a5", "a6", "scalability",
    }
    for s in all_scenarios():
        assert s.description


# -- seed spawning ---------------------------------------------------------

def test_spawn_seeds_deterministic_and_stream_dependent():
    a = spawn_seeds(7, "scenario/fig6", 4)
    assert a == spawn_seeds(7, "scenario/fig6", 4)
    assert a != spawn_seeds(8, "scenario/fig6", 4)
    assert a != spawn_seeds(7, "scenario/fig7", 4)
    assert len(set(a)) == 4


def test_spawn_seeds_prefix_stable():
    # The first k children don't depend on how many siblings follow.
    assert spawn_seeds(7, "s", 2) == spawn_seeds(7, "s", 5)[:2]


# -- runner ----------------------------------------------------------------

def test_runner_rejects_bad_jobs():
    with pytest.raises(ScenarioError):
        Runner(jobs=0)


def test_runner_merges_grid_params_and_spawned_seeds():
    s = _scenario(name="merge-test-scenario")
    register(s)
    try:
        result = Runner(seed=11).run("merge-test-scenario")
    finally:
        _REGISTRY.pop("merge-test-scenario", None)
    assert [r["x"] for r in result.records] == [1, 2, 3]
    expected = spawn_seeds(11, "scenario/merge-test-scenario", 3)
    assert [r["seed_used"] for r in result.records] == expected
    assert result.rendered == _render(result.records)
    assert result.meta["n_points"] == 3
    assert result.meta["wall_time_s"] >= 0


# -- artifact store --------------------------------------------------------

def test_jsonify_coerces_numpy_and_tuples():
    out = jsonify({"a": np.float64(1.5), "b": (1, np.int32(2)),
                   "c": np.array([3.0, 4.0]), 5: "x"})
    assert out == {"a": 1.5, "b": [1, 2], "c": [3.0, 4.0], "5": "x"}
    json.dumps(out)  # fully JSON-native


def test_artifact_store_roundtrip(tmp_path):
    result = RunResult(scenario="toy", seed=3, jobs=2, smoke=False,
                       records=[{"x": 1, "y": np.float64(2.0)}],
                       rendered="1 -> 2.0", meta={"seed": 3, "jobs": 2})
    directory = ArtifactStore(tmp_path).write(result)
    assert directory == tmp_path / "toy"
    records = json.loads((directory / "records.json").read_text())
    assert records == [{"x": 1, "y": 2.0}]
    assert (directory / "rendered.txt").read_text() == "1 -> 2.0\n"
    meta = json.loads((directory / "run-jobs2.json").read_text())
    assert meta == {"seed": 3, "jobs": 2}


def test_artifact_store_smoke_suffix(tmp_path):
    result = RunResult(scenario="toy", seed=0, jobs=1, smoke=True,
                       records=[], rendered="", meta={})
    directory = ArtifactStore(tmp_path).write(result)
    assert (directory / "records-smoke.json").exists()
    assert (directory / "rendered-smoke.txt").exists()
    assert (directory / "run-smoke-jobs1.json").exists()
