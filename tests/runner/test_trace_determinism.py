"""Trace artifacts obey the same ``--jobs`` contract as records.

A traced run persists ``trace.jsonl`` and ``metrics.json``; both must
be byte-identical for any worker count.  This is stricter than record
parity: every traced id (instances, jobs, messages) and every event
timestamp must be independent of which pool worker ran which point —
the runner resets the process-global id sequences per point to make it
hold.  fig6 exercises the vector tier (runner markers dominate), a3 the
event tier with ``all`` categories (kernel/control/pna/backend events).
"""

import json

import pytest

from repro.runner import ArtifactStore, Runner

SCENARIOS = ("fig6", "a3")


def _traced_artifacts(tmp_path, name, jobs):
    root = tmp_path / f"jobs{jobs}"
    runner = Runner(jobs=jobs, seed=7, smoke=True, trace="all",
                    store=ArtifactStore(root))
    result = runner.run(name)
    directory = root / name
    return (result,
            (directory / "trace.jsonl").read_bytes(),
            (directory / "metrics.json").read_bytes())


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("jobs", (2, 4))
def test_trace_parallel_matches_serial_byte_for_byte(tmp_path, name, jobs):
    serial, serial_trace, serial_metrics = _traced_artifacts(
        tmp_path, name, 1)
    par, par_trace, par_metrics = _traced_artifacts(tmp_path, name, jobs)
    assert par_trace == serial_trace
    assert par_metrics == serial_metrics
    # Records stay byte-identical under tracing too.
    assert par.records == serial.records
    assert serial.trace_events is not None
    assert serial.meta["trace_categories"] == [
        "kernel", "net", "carousel", "control", "pna", "backend",
        "fault", "serve", "vector", "runner"]


def test_traced_run_has_runner_markers_and_metrics(tmp_path):
    result, trace_bytes, metrics_bytes = _traced_artifacts(
        tmp_path, "a3", 1)
    events = result.trace_events
    names = [(ev[1], ev[2]) for ev in events]
    assert names[0] == ("runner", "run_start")
    assert names[-1] == ("runner", "run_end")
    assert names.count(("runner", "point_start")) == \
        result.meta["n_points"] > 0
    # The event tier really traced: kernel + control activity present.
    categories = {ev[1] for ev in events}
    assert {"kernel", "control", "runner"} <= categories
    metrics = json.loads(metrics_bytes)
    assert metrics["counters"]["census.heartbeats"] > 0
    assert result.meta["trace_events"] == len(events)
    # Per-point wall times ride in the (per-jobs) metadata, not the trace.
    assert len(result.meta["point_wall_s"]) == result.meta["n_points"]
    assert b"wall" not in trace_bytes


def test_untraced_runner_writes_no_trace_artifacts(tmp_path):
    runner = Runner(jobs=1, seed=7, smoke=True,
                    store=ArtifactStore(tmp_path))
    result = runner.run("fig6")
    assert result.trace_events is None and result.metrics is None
    directory = tmp_path / "fig6"
    assert not (directory / "trace.jsonl").exists()
    assert not (directory / "metrics.json").exists()
    assert (directory / "records-smoke.json").exists()


def test_trace_category_subset(tmp_path):
    runner = Runner(jobs=1, seed=7, smoke=True, trace="control,runner",
                    store=ArtifactStore(tmp_path))
    result = runner.run("a3")
    categories = {ev[1] for ev in result.trace_events}
    assert categories <= {"control", "runner"}
    assert result.meta["trace_categories"] == ["control", "runner"]
