"""Tests for the DCI comparator models and Table I derivation."""

import math

import pytest

from repro.baselines import (
    DesktopGrid,
    IaaSProvider,
    OddCIModel,
    ProvisionResult,
    RequirementThresholds,
    VoluntaryComputing,
    evaluate_requirements,
)
from repro.errors import BaselineError
from repro.net.message import MEGABYTE
from repro.workloads import uniform_bag


# -- ProvisionResult validation -----------------------------------------------

def test_provision_result_validation():
    with pytest.raises(BaselineError):
        ProvisionResult(requested=0, acquired=0, ready_time_s=0,
                        per_node_manual_effort=False)
    with pytest.raises(BaselineError):
        ProvisionResult(requested=5, acquired=6, ready_time_s=0,
                        per_node_manual_effort=False)
    with pytest.raises(BaselineError):
        ProvisionResult(requested=5, acquired=5, ready_time_s=-1,
                        per_node_manual_effort=False)


# -- VoluntaryComputing -----------------------------------------------------------

def test_voluntary_logistic_growth_monotone():
    v = VoluntaryComputing()
    counts = [v.adoption_at(t) for t in (0, 30, 90, 365)]
    assert counts == sorted(counts)
    assert counts[0] == pytest.approx(v.seed_volunteers, rel=0.01)
    assert counts[-1] < v.ceiling


def test_voluntary_time_to_reach_inverse_of_adoption():
    v = VoluntaryComputing()
    for n in (1_000, 100_000, 5_000_000):
        days = v.time_to_reach(n)
        assert v.adoption_at(days) == pytest.approx(n, rel=1e-6)


def test_voluntary_scales_high_but_slowly():
    v = VoluntaryComputing()
    big = v.provision(1_000_000)
    assert big.acquired == 1_000_000
    assert big.ready_time_s > 30 * 86400.0  # months, not minutes
    assert big.per_node_manual_effort


def test_voluntary_above_ceiling():
    v = VoluntaryComputing(ceiling=1000, seed_volunteers=10)
    res = v.provision(10_000)
    assert res.acquired == 999
    assert math.isinf(res.ready_time_s)


def test_voluntary_validation():
    with pytest.raises(BaselineError):
        VoluntaryComputing(ceiling=10, seed_volunteers=10)
    v = VoluntaryComputing()
    with pytest.raises(BaselineError):
        v.provision(0)
    with pytest.raises(BaselineError):
        v.time_to_reach(0)
    with pytest.raises(BaselineError):
        v.adoption_at(-1)
    with pytest.raises(BaselineError):
        v.staging_time(0, 1)


# -- DesktopGrid -------------------------------------------------------------------

def test_desktop_grid_scale_capped():
    g = DesktopGrid()
    res = g.provision(1_000_000)
    assert res.acquired == g.max_scale == 25_000
    assert res.per_node_manual_effort


def test_desktop_grid_small_requests_fast_but_manual():
    g = DesktopGrid()
    res = g.provision(100)
    assert res.acquired == 100
    # within pre-federated domains: no negotiation, just setup
    assert res.ready_time_s < 3600.0


def test_desktop_grid_new_domains_cost_negotiation():
    g = DesktopGrid()
    res = g.provision(10_000)  # needs 10 domains, 5 pre-federated
    assert res.ready_time_s > 5 * 86400.0


def test_desktop_grid_validation():
    with pytest.raises(BaselineError):
        DesktopGrid(domain_count=0)
    with pytest.raises(BaselineError):
        DesktopGrid(pre_federated_domains=99)
    with pytest.raises(BaselineError):
        DesktopGrid(admin_parallelism=0)


# -- IaaS -------------------------------------------------------------------------

def test_iaas_fast_within_quota():
    c = IaaSProvider()
    res = c.provision(100)
    assert res.acquired == 100
    assert res.ready_time_s < 600.0
    assert not res.per_node_manual_effort


def test_iaas_quota_cap():
    c = IaaSProvider(vm_quota=500)
    res = c.provision(10_000)
    assert res.acquired == 500
    assert "quota" in res.notes


def test_iaas_staging_scales_linearly_with_n():
    c = IaaSProvider()
    one = c.staging_time(10 * MEGABYTE, 1)
    thousand = c.staging_time(10 * MEGABYTE, 1000)
    assert thousand == pytest.approx(1000 * one)


def test_iaas_validation():
    with pytest.raises(BaselineError):
        IaaSProvider(vm_quota=0)
    with pytest.raises(BaselineError):
        IaaSProvider(api_requests_per_s=0)
    with pytest.raises(BaselineError):
        IaaSProvider(store_bps=0)


# -- OddCI model ----------------------------------------------------------------------

def test_oddci_provision_time_independent_of_n():
    o = OddCIModel()
    t_small = o.provision(100).ready_time_s
    t_large = o.provision(10_000_000).ready_time_s
    assert t_small == pytest.approx(t_large)


def test_oddci_staging_independent_of_n():
    o = OddCIModel()
    assert o.staging_time(10 * MEGABYTE, 1) == \
        pytest.approx(o.staging_time(10 * MEGABYTE, 10_000_000))


def test_oddci_audience_cap():
    o = OddCIModel(population=1000)
    res = o.provision(5000)
    assert res.acquired == 1000


def test_oddci_validation():
    with pytest.raises(BaselineError):
        OddCIModel(population=0)
    with pytest.raises(BaselineError):
        OddCIModel(beta_bps=0)


# -- Table I derivation ---------------------------------------------------------------

def test_requirements_matrix_matches_paper():
    """Only OddCI ticks all three requirement boxes (Table I)."""
    matrix = {
        m.name: evaluate_requirements(m)
        for m in (VoluntaryComputing(), DesktopGrid(), IaaSProvider(),
                  OddCIModel())
    }
    v = matrix["voluntary-computing"]
    assert v["extremely_high_scalability"]          # huge fleets... eventually
    assert not v["on_demand_instantiation"]         # campaign, no lifecycle API
    assert not v["efficient_setup"]                 # manual installs

    g = matrix["desktop-grid"]
    assert not g["extremely_high_scalability"]      # capped at ~25k
    assert g["on_demand_instantiation"]             # matchmaking
    assert not g["efficient_setup"]                 # per-node configuration

    c = matrix["iaas"]
    assert not c["extremely_high_scalability"]      # quota
    assert c["on_demand_instantiation"]
    assert c["efficient_setup"]

    o = matrix["oddci"]
    assert all(o.values())


def test_oddci_job_makespan_beats_iaas_at_scale():
    job = uniform_bag(100_000, image_bits=10 * MEGABYTE, ref_seconds=60.0)
    oddci = OddCIModel().job_makespan(job, 5000)
    iaas = IaaSProvider().job_makespan(job, 5000)
    # At equal fleet size the broadcast staging wins.
    assert oddci < iaas


def test_job_makespan_errors_on_zero_acquisition():
    v = VoluntaryComputing(ceiling=100, seed_volunteers=10)
    job = uniform_bag(10)
    # acquired is ceiling-1, never 0, so use a model that can yield 0:
    class Dead(OddCIModel):
        def provision(self, n):
            return ProvisionResult(requested=n, acquired=0, ready_time_s=0,
                                   per_node_manual_effort=False)

    with pytest.raises(BaselineError):
        Dead().job_makespan(job, 10)
