"""Tests for the model-vs-simulation validation helpers."""

import numpy as np
import pytest

from repro.analysis.validation import (
    SeriesComparison,
    compare_series,
    crossing_point,
    is_monotone,
)
from repro.errors import AnalysisError


def test_compare_identical_series():
    c = compare_series([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
    assert c.n == 3
    assert c.max_abs_error == 0.0
    assert c.max_rel_error == 0.0
    assert c.rmse == 0.0
    assert c.bias == 0.0
    assert c.within(0.0)


def test_compare_known_offsets():
    c = compare_series([10.0, 20.0], [11.0, 18.0])
    assert c.max_abs_error == 2.0
    assert c.max_rel_error == pytest.approx(0.1)
    assert c.bias == pytest.approx(-0.5)
    assert c.rmse == pytest.approx(np.sqrt((1 + 4) / 2))
    assert c.within(0.1) and not c.within(0.05)


def test_compare_validation():
    with pytest.raises(AnalysisError):
        compare_series([1.0], [1.0, 2.0])
    with pytest.raises(AnalysisError):
        compare_series([], [])
    with pytest.raises(AnalysisError):
        compare_series([0.0, 1.0], [1.0, 1.0])


def test_is_monotone():
    assert is_monotone([1, 2, 2, 3])
    assert not is_monotone([1, 2, 2, 3], strict=True)
    assert is_monotone([1, 2, 3], strict=True)
    assert is_monotone([3, 2, 1], increasing=False)
    assert is_monotone([5])  # trivially


def test_crossing_point_interpolates():
    x = [1.0, 10.0, 100.0]
    y = [0.2, 0.5, 0.8]
    assert crossing_point(x, y, 0.5) == pytest.approx(10.0)
    # halfway between 0.5 and 0.8 -> x halfway between 10 and 100
    assert crossing_point(x, y, 0.65) == pytest.approx(55.0)
    assert crossing_point(x, y, 0.1) == 1.0  # already above at start


def test_crossing_point_never_crossing():
    with pytest.raises(AnalysisError):
        crossing_point([1, 2, 3], [0.1, 0.2, 0.3], 0.9)
    with pytest.raises(AnalysisError):
        crossing_point([1], [0.1], 0.05)


def test_fig6_crossing_statement():
    """Quantify the paper's 'ratio above 100 generally enough': the phi
    at which E crosses 0.9 for n/N=100 vs n/N=10."""
    from repro.analysis import efficiency_model, p_from_phi
    from repro.net.message import KILOBYTE, MEGABYTE

    def curve(ratio):
        phis = np.logspace(0, 5, 31)
        es = [efficiency_model(
            image_bits=10 * MEGABYTE, n_tasks=int(ratio * 100),
            n_nodes=100, io_bits=float(KILOBYTE),
            p_seconds=p_from_phi(float(f), float(KILOBYTE), 150e3))
            for f in phis]
        return phis, es

    x100, e100 = curve(100)
    x10, e10 = curve(10)
    cross100 = crossing_point(x100, e100, 0.9)
    cross10 = crossing_point(x10, e10, 0.9)
    assert cross100 < cross10  # larger n/N crosses high efficiency sooner
    assert cross100 < 1000     # practical phi for n/N=100


def test_event_vs_analytic_wakeup_within_tolerance():
    """validation helpers in anger: event-tier wakeup vs 1.5 I/beta."""
    from repro.analysis import wakeup_time
    from repro.experiments import event_tier_wakeup_mean
    from repro.net.message import MEGABYTE

    images = [1 * MEGABYTE, 4 * MEGABYTE]
    analytic = [wakeup_time(i, 1e6) for i in images]
    measured = [event_tier_wakeup_mean(i, 1e6, n_readers=25, seed=1)
                for i in images]
    comparison = compare_series(analytic, measured)
    # Small images pay proportionally more PNA-Xlet/config/DSM-CC
    # overhead (the 1 MB point runs ~17% above the bare model).
    assert comparison.within(0.20)
    assert comparison.bias > 0  # overheads only ever inflate W
