"""Tests for the Section 5 analytical models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OddCIParameters,
    efficiency_model,
    makespan_model,
    p_from_phi,
    phi,
    throughput_ideal,
    throughput_single,
    wakeup_time,
)
from repro.errors import AnalysisError
from repro.net.message import KILOBYTE, MEGABYTE


def test_wakeup_time_formula():
    # 8 MB at 1 Mbps: 1.5 * 8*2^20*8 / 1e6 ~ 100.7 s
    w = wakeup_time(8 * MEGABYTE, 1e6)
    assert w == pytest.approx(1.5 * 8 * MEGABYTE / 1e6)
    with pytest.raises(AnalysisError):
        wakeup_time(0, 1e6)
    with pytest.raises(AnalysisError):
        wakeup_time(1e6, 0)


def test_wakeup_scales_linearly_in_I_and_inverse_beta():
    assert wakeup_time(2 * MEGABYTE, 1e6) == pytest.approx(
        2 * wakeup_time(MEGABYTE, 1e6))
    assert wakeup_time(MEGABYTE, 2e6) == pytest.approx(
        wakeup_time(MEGABYTE, 1e6) / 2)


def test_makespan_decomposition():
    params = OddCIParameters(beta_bps=1e6, delta_bps=150e3)
    m = makespan_model(image_bits=10 * MEGABYTE, n_tasks=1000, n_nodes=10,
                       io_bits=KILOBYTE, p_seconds=60.0, params=params)
    w = wakeup_time(10 * MEGABYTE, 1e6)
    per_task = KILOBYTE / 150e3 + 60.0
    assert m == pytest.approx(w + 100 * per_task)


def test_makespan_validation():
    with pytest.raises(AnalysisError):
        makespan_model(image_bits=1, n_tasks=0, n_nodes=1, io_bits=0,
                       p_seconds=1)
    with pytest.raises(AnalysisError):
        makespan_model(image_bits=1, n_tasks=1, n_nodes=1, io_bits=-1,
                       p_seconds=1)
    with pytest.raises(AnalysisError):
        makespan_model(image_bits=1, n_tasks=1, n_nodes=1, io_bits=0,
                       p_seconds=0)
    with pytest.raises(AnalysisError):
        OddCIParameters(beta_bps=0)


def test_efficiency_bounds_and_examples():
    e = efficiency_model(image_bits=10 * MEGABYTE, n_tasks=10_000,
                         n_nodes=100, io_bits=KILOBYTE, p_seconds=5460.0)
    assert 0.9 < e <= 1.0  # paper: n/N=100, phi=1e5 -> very efficient


def test_phi_roundtrip_and_paper_examples():
    delta = 150_000.0
    p = p_from_phi(1.0, KILOBYTE, delta)
    assert p == pytest.approx(KILOBYTE / delta)  # ~54.6 ms
    assert 0.05 < p < 0.06
    p2 = p_from_phi(1e5, KILOBYTE, delta)
    assert 5000 < p2 < 6000  # ~1.5 h
    assert phi(p2, KILOBYTE, delta) == pytest.approx(1e5)


def test_phi_validation():
    with pytest.raises(AnalysisError):
        phi(0, 1, 1)
    with pytest.raises(AnalysisError):
        p_from_phi(0, 1, 1)


def test_throughputs():
    assert throughput_single(0.5) == 2.0
    assert throughput_ideal(10, 0.5) == 20.0
    with pytest.raises(AnalysisError):
        throughput_single(0)
    with pytest.raises(AnalysisError):
        throughput_ideal(0, 1)


@given(
    n_tasks=st.integers(min_value=1, max_value=10**7),
    n_nodes=st.integers(min_value=1, max_value=10**6),
    p=st.floats(min_value=1e-3, max_value=1e5),
    io_kb=st.floats(min_value=0.0, max_value=100.0),
)
@settings(max_examples=200, deadline=None)
def test_property_efficiency_in_unit_interval(n_tasks, n_nodes, p, io_kb):
    e = efficiency_model(image_bits=10 * MEGABYTE, n_tasks=n_tasks,
                         n_nodes=n_nodes, io_bits=io_kb * KILOBYTE,
                         p_seconds=p)
    assert 0.0 < e <= 1.0 + 1e-12


@given(
    n_tasks=st.integers(min_value=1, max_value=10**6),
    p=st.floats(min_value=1e-3, max_value=1e4),
)
@settings(max_examples=100, deadline=None)
def test_property_makespan_monotonicity(n_tasks, p):
    common = dict(image_bits=MEGABYTE, io_bits=KILOBYTE, p_seconds=p)
    m1 = makespan_model(n_tasks=n_tasks, n_nodes=10, **common)
    m2 = makespan_model(n_tasks=n_tasks + 100, n_nodes=10, **common)
    m3 = makespan_model(n_tasks=n_tasks, n_nodes=20, **common)
    assert m2 > m1      # more tasks -> longer
    assert m3 < m1      # more nodes -> shorter
    m4 = makespan_model(n_tasks=n_tasks, n_nodes=10, image_bits=MEGABYTE,
                        io_bits=KILOBYTE, p_seconds=p * 2)
    assert m4 > m1      # heavier tasks -> longer


def test_efficiency_increases_with_phi_and_n_over_N():
    """The qualitative content of Figure 6."""
    delta = 150_000.0
    es = []
    for phi_v in (1.0, 10.0, 100.0, 1000.0):
        p = p_from_phi(phi_v, KILOBYTE, delta)
        es.append(efficiency_model(
            image_bits=10 * MEGABYTE, n_tasks=10_000, n_nodes=100,
            io_bits=KILOBYTE, p_seconds=p))
    assert es == sorted(es)  # monotone in phi
    # and monotone in n/N at fixed phi:
    p = p_from_phi(100.0, KILOBYTE, delta)
    e_ratio = [efficiency_model(
        image_bits=10 * MEGABYTE, n_tasks=ratio * 100, n_nodes=100,
        io_bits=KILOBYTE, p_seconds=p) for ratio in (1, 10, 100, 1000)]
    assert e_ratio == sorted(e_ratio)
