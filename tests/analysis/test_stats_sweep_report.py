"""Tests for statistics, sweep and report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    format_seconds,
    format_si,
    grid_points,
    mean_confidence_interval,
    ratio_with_error,
    relative_error,
    render_records,
    render_series,
    render_table,
    sweep,
)
from repro.errors import AnalysisError


# -- stats ----------------------------------------------------------------

def test_ci_known_sample():
    # symmetric sample: mean exactly 5
    ci = mean_confidence_interval([4.0, 5.0, 6.0, 5.0], confidence=0.90)
    assert ci.mean == pytest.approx(5.0)
    assert ci.low < 5.0 < ci.high
    assert ci.contains(5.0)
    assert not ci.contains(100.0)
    assert ci.n == 4


def test_ci_tightens_with_samples():
    rng = np.random.default_rng(0)
    small = mean_confidence_interval(rng.normal(10, 2, 10))
    large = mean_confidence_interval(rng.normal(10, 2, 1000))
    assert large.half_width < small.half_width


def test_ci_coverage_simulation():
    """90% CI should contain the true mean ~90% of the time."""
    rng = np.random.default_rng(1)
    hits = sum(
        mean_confidence_interval(rng.normal(3.0, 1.0, 20), 0.90).contains(3.0)
        for _ in range(400))
    assert 0.85 < hits / 400 < 0.95


def test_ci_validation():
    with pytest.raises(AnalysisError):
        mean_confidence_interval([1.0])
    with pytest.raises(AnalysisError):
        mean_confidence_interval([1.0, 2.0], confidence=1.5)


def test_max_error_fraction():
    ci = mean_confidence_interval([9.0, 10.0, 11.0])
    assert ci.max_error == pytest.approx(ci.half_width / 10.0)


def test_ratio_with_error():
    stb = [20.0, 21.0, 19.5, 20.5]
    pc = [1.0, 1.0, 1.0, 1.0]
    ci = ratio_with_error(stb, pc)
    assert ci.mean == pytest.approx(20.25)
    with pytest.raises(AnalysisError):
        ratio_with_error([1.0], [1.0, 2.0])
    with pytest.raises(AnalysisError):
        ratio_with_error([1.0, 2.0], [0.0, 1.0])


def test_relative_error():
    assert relative_error(22.0, 20.0) == pytest.approx(0.1)
    with pytest.raises(AnalysisError):
        relative_error(1.0, 0.0)


# -- sweep ------------------------------------------------------------------

def test_grid_points_cartesian_order():
    pts = grid_points({"a": [1, 2], "b": ["x", "y"]})
    assert pts == [{"a": 1, "b": "x"}, {"a": 1, "b": "y"},
                   {"a": 2, "b": "x"}, {"a": 2, "b": "y"}]


def test_grid_validation():
    with pytest.raises(AnalysisError):
        grid_points({})
    with pytest.raises(AnalysisError):
        grid_points({"a": []})
    with pytest.raises(AnalysisError):
        grid_points({"a": 5})


def test_sweep_merges_params_and_results():
    records = sweep(lambda a, b: {"total": a + b},
                    {"a": [1, 2], "b": [10]})
    assert records == [{"a": 1, "b": 10, "total": 11},
                       {"a": 2, "b": 10, "total": 12}]


def test_sweep_requires_mapping_result():
    with pytest.raises(AnalysisError):
        sweep(lambda a: a, {"a": [1]})


# -- report ----------------------------------------------------------------

def test_render_table_alignment():
    out = render_table(["name", "value"],
                       [["alpha", 1.5], ["b", 123456.0]],
                       title="demo")
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # all data lines same width
    assert len(set(len(l) for l in lines[1:])) == 1


def test_render_table_width_mismatch():
    with pytest.raises(AnalysisError):
        render_table(["a"], [[1, 2]])


def test_render_records():
    recs = [{"x": 1, "y": 2.0}, {"x": 3, "y": 4.0}]
    out = render_records(recs)
    assert "x" in out and "y" in out and "3" in out
    out2 = render_records(recs, columns=["y"])
    assert "x" not in out2.splitlines()[0]
    with pytest.raises(AnalysisError):
        render_records([])


def test_render_series():
    out = render_series([1, 10, 100], {"eff": [0.1, 0.5, 0.9]},
                        x_label="phi", title="fig6", log_y=False)
    assert "fig6" in out
    assert "eff" in out
    assert "|" in out.splitlines()[-1]  # sparkline row


def test_render_series_log_y_handles_positive_values():
    out = render_series([1, 2], {"m": [10.0, 100000.0]}, log_y=True)
    assert "m" in out


def test_render_series_length_mismatch():
    with pytest.raises(AnalysisError):
        render_series([1, 2], {"y": [1.0]})


def test_format_seconds():
    assert format_seconds(0.0531) == "53.1 ms"
    assert format_seconds(64.0) == "64.00 s"
    assert format_seconds(600.0) == "10.0 min"
    assert format_seconds(39600.0) == "11.00 h"
    with pytest.raises(AnalysisError):
        format_seconds(-1)


def test_format_si():
    assert format_si(0) == "0"
    assert format_si(1_230_000, "bps") == "1.23 Mbps"
    assert format_si(1500) == "1.50 k"
    assert format_si(42) == "42"
