"""Tests for the command-line front end."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_experiment_registry_matches_design_doc():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "wakeup", "fig6", "fig7",
        "a1", "a2", "a3", "a4", "a5", "a6", "scalability",
    }


def test_list_prints_all_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in EXPERIMENTS:
        assert key in out


def test_run_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_run_experiment_function():
    text = run_experiment("table3", seed=0)
    assert "Table III" in text


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit):
        run_experiment("nope")


def test_out_file_written(tmp_path, capsys):
    out_file = tmp_path / "artifact.txt"
    assert main(["table1", "--out", str(out_file)]) == 0
    assert "Table I" in out_file.read_text()


def test_seed_flag_changes_noise(capsys):
    a = run_experiment("table3", seed=0)
    b = run_experiment("table3", seed=5)
    assert a != b


def test_parser_defaults():
    args = build_parser().parse_args(["fig6"])
    assert args.seed == 0 and args.out is None
