"""Tests for the command-line front end."""

import json

import pytest

from repro.cli import build_parser, main, run_experiment
from repro.runner import scenario_ids

ALL_IDS = {
    "table1", "table2", "table3", "wakeup", "fig6", "fig7",
    "a1", "a2", "a3", "a4", "a5", "a6", "scalability", "fault_sweep",
    "federation_sweep", "service_sweep", "flash_crowd",
    "sabotage_sweep", "vector_scale",
}


def test_scenario_registry_matches_design_doc():
    assert set(scenario_ids()) == ALL_IDS


def test_list_prints_all_ids(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for key in ALL_IDS:
        assert key in out


def test_run_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out


def test_run_experiment_function():
    text = run_experiment("table3", seed=0)
    assert "Table III" in text


def test_unknown_experiment_exits():
    with pytest.raises(SystemExit):
        run_experiment("nope")


def test_unknown_experiment_exits_via_main():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_out_writes_artifacts(tmp_path, capsys):
    assert main(["table1", "--out", str(tmp_path)]) == 0
    exp_dir = tmp_path / "table1"
    assert "Table I" in (exp_dir / "rendered.txt").read_text()
    records = json.loads((exp_dir / "records.json").read_text())
    assert isinstance(records, list) and records
    meta = json.loads((exp_dir / "run-jobs1.json").read_text())
    assert meta["scenario"] == "table1"
    assert meta["seed"] == 0 and meta["jobs"] == 1


def test_smoke_flag_uses_smoke_suffix(tmp_path):
    assert main(["scalability", "--smoke", "--out", str(tmp_path)]) == 0
    exp_dir = tmp_path / "scalability"
    assert (exp_dir / "records-smoke.json").exists()
    assert (exp_dir / "run-smoke-jobs1.json").exists()


def test_seed_flag_changes_noise():
    a = run_experiment("table3", seed=0)
    b = run_experiment("table3", seed=5)
    assert a != b


def test_table1_gets_uniform_seed_plumbing(tmp_path):
    # Historically table1 silently ignored --seed; the registry spawns
    # per-point seeds for every scenario, deterministic in the master.
    a = run_experiment("table1", seed=0)
    b = run_experiment("table1", seed=0)
    assert a == b


def test_parser_defaults():
    args = build_parser().parse_args(["fig6"])
    assert args.seed == 0 and args.out is None
    assert args.jobs == 1 and args.smoke is False


def test_parser_jobs_flag():
    args = build_parser().parse_args(["fig6", "--jobs", "4"])
    assert args.jobs == 4
