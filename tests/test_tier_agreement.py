"""Cross-validation: the event tier and the vector tier implement the
same semantics, so on overlapping sizes their outcomes must agree."""

import numpy as np
import pytest

from repro.core import OddCISystem
from repro.net.message import KILOBYTE, MEGABYTE
from repro.vector import (
    VectorOddCI,
    VectorPopulation,
    makespan_heap,
    makespan_waterfill,
)
from repro.workloads import REFERENCE_PC, uniform_bag


def event_tier_makespan(n_nodes, n_tasks, ref_seconds, io_bits,
                        image_bits, seed=0):
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         delta_latency_s=0.0, seed=seed,
                         maintenance_interval_s=1e6)
    system.add_pnas(n_nodes, heartbeat_interval_s=1e5,
                    dve_poll_interval_s=5.0)
    job = uniform_bag(n_tasks, image_bits=image_bits,
                      input_bits=io_bits / 2, ref_seconds=ref_seconds,
                      result_bits=io_bits / 2)
    submission = system.provider.submit_job(job, target_size=n_nodes)
    report = system.provider.run_job_to_completion(submission, limit_s=1e8)
    return report.makespan


def vector_tier_makespan(n_nodes, n_tasks, ref_seconds, io_bits,
                         image_bits, seed=0):
    pop = VectorPopulation(n_nodes, np.random.default_rng(seed),
                           profile=REFERENCE_PC)
    system = VectorOddCI(pop, beta_bps=1_000_000.0, delta_bps=150_000.0)
    job = uniform_bag(n_tasks, image_bits=image_bits,
                      input_bits=io_bits / 2, ref_seconds=ref_seconds,
                      result_bits=io_bits / 2)
    return system.run_job(job, target_size=n_nodes).makespan_s


@pytest.mark.parametrize("n_nodes,n_tasks,ref_seconds", [
    (10, 100, 30.0),
    (20, 200, 10.0),
    (5, 25, 60.0),
])
def test_event_and_vector_makespans_agree(n_nodes, n_tasks, ref_seconds):
    """Same job, same channels: the tiers agree within the modelling
    differences (broadcast-message vs carousel wakeup, protocol chatter)."""
    kwargs = dict(io_bits=float(KILOBYTE), image_bits=2 * MEGABYTE)
    event = event_tier_makespan(n_nodes, n_tasks, ref_seconds, **kwargs)
    vector = vector_tier_makespan(n_nodes, n_tasks, ref_seconds, **kwargs)
    assert vector == pytest.approx(event, rel=0.25)


def test_heap_and_waterfill_agree_on_big_uniform_bag():
    rng = np.random.default_rng(0)
    ready = rng.uniform(0.0, 60.0, size=500)
    wf = makespan_waterfill(ready, 5_000, 3.7)
    hp = makespan_heap(ready, np.full(5_000, 3.7))
    assert wf.finish_time == pytest.approx(hp.finish_time, rel=1e-9)


def test_vector_efficiency_matches_event_derived_efficiency():
    n_nodes, n_tasks, p = 10, 200, 20.0
    kwargs = dict(io_bits=float(KILOBYTE), image_bits=2 * MEGABYTE)
    event_m = event_tier_makespan(n_nodes, n_tasks, p, **kwargs)
    vector_m = vector_tier_makespan(n_nodes, n_tasks, p, **kwargs)
    event_eff = n_tasks * p / (event_m * n_nodes)
    vector_eff = n_tasks * p / (vector_m * n_nodes)
    assert vector_eff == pytest.approx(event_eff, abs=0.12)
