"""Cross-validation: the event tier and the vector tier implement the
same semantics, so on overlapping sizes their outcomes must agree.

The suite has three layers:

* **Point agreement** — single runs on small fleets, makespan and
  efficiency within the modelling differences (broadcast-message vs
  carousel wakeup, protocol chatter): rel 0.25.
* **Statistical agreement** — 8 seeds with probabilistic recruitment
  (target < fleet, so both tiers draw a binomial cohort): per-seed
  makespans within rel 0.15, seed-mean makespans within rel 0.10,
  recruited-count distributions matching the shared binomial law, and
  a churn-storm configuration whose availability agrees within
  abs 0.15 over the window both tiers cover.  Raw storm *makespans*
  diverge by design — the event tier kills victims (in-flight work is
  lost and re-dispatched after lease expiry) while the vector tier
  models suspended capacity — so the storm comparison integrates the
  instance-size series over a common horizon instead.
* **Churn analytics** — the vector tier's closed forms
  (:func:`~repro.vector.churn.effective_capacity`,
  :func:`~repro.vector.churn.makespan_under_churn`) against the event
  tier's *sampled* availability: an OddCI-DTV fleet with per-receiver
  ON/OFF churn samples ``online_count`` over time; the closed-form
  capacity curve must track it (mean abs error ≲ MC noise) and the
  makespan dilution factor must equal the reciprocal of the sampled
  availability.  The discrete tier's actual makespan upper-bounds the
  closed form (lease-expiry tails are extra).

10^4/10^5-node agreement points run under ``--run-experiments``.
"""

import numpy as np
import pytest

from repro.core import OddCISystem
from repro.core.policies import DeficitProportional
from repro.dtv_oddci import OddCIDTVSystem
from repro.faults import (
    FaultEvent,
    FaultPlan,
    active_plan,
    availability_fraction,
)
from repro.net.message import KILOBYTE, MEGABYTE, bits_from_bytes
from repro.vector import (
    VectorOddCI,
    VectorOddCISystem,
    VectorPopulation,
    makespan_heap,
    makespan_waterfill,
)
from repro.vector.churn import effective_capacity, makespan_under_churn
from repro.workloads import (
    REFERENCE_PC,
    ChurnModel,
    PowerMode,
    uniform_bag,
)
from repro.workloads.devices import REFERENCE_STB


def event_tier_makespan(n_nodes, n_tasks, ref_seconds, io_bits,
                        image_bits, seed=0):
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         delta_latency_s=0.0, seed=seed,
                         maintenance_interval_s=1e6)
    system.add_pnas(n_nodes, heartbeat_interval_s=1e5,
                    dve_poll_interval_s=5.0)
    job = uniform_bag(n_tasks, image_bits=image_bits,
                      input_bits=io_bits / 2, ref_seconds=ref_seconds,
                      result_bits=io_bits / 2)
    submission = system.provider.submit_job(job, target_size=n_nodes)
    report = system.provider.run_job_to_completion(submission, limit_s=1e8)
    return report.makespan


def vector_tier_makespan(n_nodes, n_tasks, ref_seconds, io_bits,
                         image_bits, seed=0):
    pop = VectorPopulation(n_nodes, np.random.default_rng(seed),
                           profile=REFERENCE_PC)
    system = VectorOddCI(pop, beta_bps=1_000_000.0, delta_bps=150_000.0)
    job = uniform_bag(n_tasks, image_bits=image_bits,
                      input_bits=io_bits / 2, ref_seconds=ref_seconds,
                      result_bits=io_bits / 2)
    return system.run_job(job, target_size=n_nodes).makespan_s


@pytest.mark.parametrize("n_nodes,n_tasks,ref_seconds", [
    (10, 100, 30.0),
    (20, 200, 10.0),
    (5, 25, 60.0),
])
def test_event_and_vector_makespans_agree(n_nodes, n_tasks, ref_seconds):
    """Same job, same channels: the tiers agree within the modelling
    differences (broadcast-message vs carousel wakeup, protocol chatter)."""
    kwargs = dict(io_bits=float(KILOBYTE), image_bits=2 * MEGABYTE)
    event = event_tier_makespan(n_nodes, n_tasks, ref_seconds, **kwargs)
    vector = vector_tier_makespan(n_nodes, n_tasks, ref_seconds, **kwargs)
    assert vector == pytest.approx(event, rel=0.25)


def test_heap_and_waterfill_agree_on_big_uniform_bag():
    rng = np.random.default_rng(0)
    ready = rng.uniform(0.0, 60.0, size=500)
    wf = makespan_waterfill(ready, 5_000, 3.7)
    hp = makespan_heap(ready, np.full(5_000, 3.7))
    assert wf.finish_time == pytest.approx(hp.finish_time, rel=1e-9)


def test_vector_efficiency_matches_event_derived_efficiency():
    n_nodes, n_tasks, p = 10, 200, 20.0
    kwargs = dict(io_bits=float(KILOBYTE), image_bits=2 * MEGABYTE)
    event_m = event_tier_makespan(n_nodes, n_tasks, p, **kwargs)
    vector_m = vector_tier_makespan(n_nodes, n_tasks, p, **kwargs)
    event_eff = n_tasks * p / (event_m * n_nodes)
    vector_eff = n_tasks * p / (vector_m * n_nodes)
    assert vector_eff == pytest.approx(event_eff, abs=0.12)


# ---------------------------------------------------------------------------
# Statistical agreement: probabilistic recruitment, 8 seeds.
# ---------------------------------------------------------------------------

SEEDS = tuple(range(8))
FLEET, TARGET = 600, 400
#: 1440 tasks / 400 nodes = 3.6, so the tasks-per-node ceiling is a
#: stable 4 for any recruited count in [360, 480) — both tiers draw
#: Binomial(600, 2/3) cohorts (sd ≈ 11.5), so the quantized makespan
#: never flips between seeds and the comparison measures the model,
#: not the ceiling.
TASKS, REF_S = 1440, 120.0


def _stat_job():
    return uniform_bag(TASKS, image_bits=2 * MEGABYTE, input_bits=512.0,
                       ref_seconds=REF_S, result_bits=512.0)


def _event_statistical_run(seed, plan=None, fleet=FLEET, target=TARGET,
                           job=None):
    """One event-tier run with *one-shot* probabilistic recruitment.

    ``DeficitProportional(safety=1.0)`` against a warmed census is the
    event-tier pendant of the vector tier's exact ``target/idle`` gate.
    The maintenance interval (120 s) exceeds the image-staging latency,
    so the deficit is not re-evaluated while the first cohort is still
    registering — a cold census or a short interval would re-publish
    the wakeup into a half-staged fleet and over-recruit (then trim,
    then re-dispatch the trimmed nodes' tasks: a pathology the vector
    tier deliberately does not model).
    """
    with active_plan(plan):
        system = OddCISystem(
            beta_bps=1e6, delta_bps=150e3, delta_latency_s=0.0,
            seed=seed, maintenance_interval_s=120.0,
            probability_policy=DeficitProportional(safety=1.0))
        system.add_pnas(fleet, heartbeat_interval_s=15.0,
                        dve_poll_interval_s=5.0)
        system.sim.run(until=130.0)  # one census round: idle known
        submission = system.provider.submit_job(
            job or _stat_job(), target_size=target,
            heartbeat_interval_s=15.0, lease_factor=3.0,
            release_on_completion=False)
        report = system.provider.run_job_to_completion(
            submission, limit_s=1e7)
    return system, submission, report


def _vector_statistical_run(seed, plan=None, fleet=FLEET, target=TARGET,
                            job=None):
    system = VectorOddCISystem(fleet, seed=seed, profile=REFERENCE_PC,
                               beta_bps=1e6, delta_bps=150e3,
                               heartbeat_interval_s=15.0, plan=plan)
    return system.run_job(job or _stat_job(), target_size=target)


def test_statistical_agreement_across_seeds():
    """8 seeds, recruitment probability 2/3: per-seed and seed-mean
    makespans agree, recruited cohorts follow the same binomial law."""
    event_mk, vector_mk = [], []
    event_rec, vector_rec = [], []
    for seed in SEEDS:
        _, _, ereport = _event_statistical_run(seed)
        vreport = _vector_statistical_run(seed)
        event_mk.append(ereport.makespan)
        vector_mk.append(vreport.makespan_s)
        event_rec.append(ereport.distinct_workers)
        vector_rec.append(vreport.recruited)
        # Per-seed: one carousel cycle of ramp skew at most.
        assert vreport.makespan_s == pytest.approx(
            ereport.makespan, rel=0.15)
        # Efficiency from the same definition on both sides.
        event_eff = TASKS * REF_S / (ereport.makespan
                                     * ereport.distinct_workers)
        assert vreport.efficiency == pytest.approx(event_eff, abs=0.12)
    # Seed means agree tighter than any single seed must.
    assert np.mean(vector_mk) == pytest.approx(
        np.mean(event_mk), rel=0.10)
    # Both cohorts are ~Binomial(600, 2/3): mean 400, sd 11.5.  Means
    # within a few standard errors, every draw inside the 4-sigma band
    # (the event tier's second maintenance round may add a handful).
    assert abs(np.mean(event_rec) - np.mean(vector_rec)) < 25
    assert all(355 <= r <= 450 for r in event_rec + vector_rec)
    assert all(355 <= r <= 450 for r in vector_rec)


STORM_PLAN = FaultPlan((FaultEvent(kind="churn_storm", time=150.0,
                                   duration_s=120.0, magnitude=0.3),),
                       name="tier-agreement-storm")


def test_storm_availability_agrees_over_common_window():
    """Churn storm: availability integrated over the window both tiers
    cover agrees within abs 0.15, even though raw makespans diverge
    (kill + lease-expiry re-dispatch vs suspended capacity)."""
    n, tasks, ref = 300, 900, 60.0
    job = uniform_bag(tasks, image_bits=2 * MEGABYTE, input_bits=512.0,
                      ref_seconds=ref, result_bits=512.0)
    for seed in (0, 1):
        with active_plan(STORM_PLAN):
            system = OddCISystem(
                beta_bps=1e6, delta_bps=150e3, delta_latency_s=0.0,
                seed=seed, maintenance_interval_s=30.0)
            system.add_pnas(n, heartbeat_interval_s=15.0,
                            dve_poll_interval_s=5.0)
            submission = system.provider.submit_job(
                job, target_size=n, heartbeat_interval_s=15.0,
                lease_factor=3.0, release_on_completion=False)
            ereport = system.provider.run_job_to_completion(
                submission, limit_s=1e7)
        eseries = system.controller.size_history[submission.instance_id]
        vsys = VectorOddCISystem(n, seed=seed, profile=REFERENCE_PC,
                                 beta_bps=1e6, delta_bps=150e3,
                                 heartbeat_interval_s=15.0,
                                 plan=STORM_PLAN)
        vreport = vsys.run_job(job, target_size=n)
        horizon = min(ereport.completed_at, vreport.finish_time)
        event_avail = float(availability_fraction(
            eseries, n, size_tolerance=0.1, until=horizon))
        vector_avail = float(availability_fraction(
            vreport.size_series, n, size_tolerance=0.1, until=horizon))
        assert vector_avail == pytest.approx(event_avail, abs=0.15)
        # The storm must cost availability on both sides.
        assert event_avail < 0.9
        assert vreport.availability < 0.95
        # And stretch the vector makespan beyond the clean run.
        clean = VectorOddCISystem(n, seed=seed, profile=REFERENCE_PC,
                                  beta_bps=1e6, delta_bps=150e3)
        assert vreport.makespan_s > clean.run_job(
            job, target_size=n).makespan_s


# ---------------------------------------------------------------------------
# Churn analytics vs the event tier's sampled availability.
# ---------------------------------------------------------------------------

CHURN = ChurnModel(mean_on_s=1200.0, mean_off_s=300.0,
                   initial_on_probability=1.0)


def _dtv_fleet(n, seed=23, heartbeat_interval_s=120.0,
               dve_poll_interval_s=30.0):
    system = OddCIDTVSystem(beta_bps=4e6, seed=seed,
                            maintenance_interval_s=120.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(n, heartbeat_interval_s=heartbeat_interval_s,
                         dve_poll_interval_s=dve_poll_interval_s,
                         churn=CHURN)
    return system


def test_effective_capacity_matches_dtv_sampled_availability():
    """The closed-form capacity curve tracks the DTV tier's sampled
    online fraction: every receiver churns ON/OFF per the same model,
    so a(t) = a_inf + (1-a_inf)exp(-rate t) must match the fleet's
    online_count within Monte-Carlo noise (n=60: sigma ~ 0.05)."""
    n = 60
    system = _dtv_fleet(n)
    errors = []
    for t in range(200, 3001, 140):
        system.sim.run(until=float(t))
        sampled = system.online_count() / n
        errors.append(sampled - effective_capacity(CHURN, float(t)))
    errors = np.asarray(errors)
    assert np.abs(errors).mean() < 0.10
    assert abs(errors.mean()) < 0.06      # no systematic bias
    assert np.abs(errors).max() < 0.20
    # Steady state: the sampled tail sits at a_inf = 0.8.
    tail = errors[-8:] + np.array(
        [effective_capacity(CHURN, float(t))
         for t in range(3000 - 7 * 140, 3001, 140)])
    assert tail.mean() == pytest.approx(
        CHURN.steady_state_availability, abs=0.08)


def test_makespan_under_churn_dilution_matches_sampled_availability():
    """makespan_under_churn's dilution factor is the reciprocal of the
    availability the event tier actually samples, and the DTV tier's
    makespan upper-bounds the closed form (lease-expiry re-dispatch
    tails are on top of pure capacity loss)."""
    n_nodes, n_tasks = 12, 480
    factor = REFERENCE_STB.factor(PowerMode.STANDBY)
    wall = 2.0 * factor
    ready = np.zeros(n_nodes)
    predicted = makespan_under_churn(ready, n_tasks, wall, CHURN,
                                     recomposition_lag_s=90.0)
    clean = makespan_under_churn(ready, n_tasks, wall, None)
    dilution = predicted.finish_time / clean.finish_time
    assert dilution > 1.0

    # Sampled availability over the predicted horizon, from a DTV fleet
    # churning per the same model (larger n to tame MC noise).
    n = 60
    system = _dtv_fleet(n)
    samples = []
    step = predicted.finish_time / 24.0
    for k in range(1, 25):
        system.sim.run(until=k * step)
        samples.append(system.online_count() / n)
    sampled_avail = float(np.mean(samples))
    assert dilution == pytest.approx(1.0 / sampled_avail, rel=0.12)

    # The discrete tier pays lease-expiry tails on top: its makespan
    # must exceed the capacity-only closed form.
    dtv = OddCIDTVSystem(beta_bps=4e6, seed=5,
                         maintenance_interval_s=60.0,
                         pna_xlet_bits=bits_from_bytes(64 * 1024))
    dtv.add_receivers(n_nodes, heartbeat_interval_s=30.0,
                      dve_poll_interval_s=10.0, churn=CHURN)
    dtv.sim.run(until=60.0)
    job = uniform_bag(n_tasks, image_bits=MEGABYTE, ref_seconds=2.0)
    submission = dtv.provider.submit_job(job, target_size=n_nodes,
                                         heartbeat_interval_s=30.0,
                                         lease_factor=1.5)
    report = dtv.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.makespan > predicted.finish_time


# ---------------------------------------------------------------------------
# Large-N agreement (10^4, 10^5) — experiments tier.
# ---------------------------------------------------------------------------

@pytest.mark.experiments
@pytest.mark.parametrize("n_nodes,seed", [
    (10_000, 0), (10_000, 1), (100_000, 0),
])
def test_large_scale_agreement(n_nodes, seed):
    """The tiers keep agreeing at 10^4-10^5 nodes (census and
    heartbeats idled so the event tier's cost stays linear)."""
    n_tasks, ref = 4 * n_nodes, 120.0
    kwargs = dict(io_bits=float(KILOBYTE), image_bits=2 * MEGABYTE,
                  seed=seed)
    event = event_tier_makespan(n_nodes, n_tasks, ref, **kwargs)
    vector = vector_tier_makespan(n_nodes, n_tasks, ref, **kwargs)
    assert vector == pytest.approx(event, rel=0.15)
