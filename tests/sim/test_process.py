"""Unit tests for generator-based processes."""

import pytest

from repro.errors import ProcessError
from repro.sim import Interrupt, Simulator


def test_process_sleeps_with_numeric_yield():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield 2.5
        trace.append(sim.now)
        yield 1.5
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 2.5, 4.0]


def test_process_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 42

    with pytest.raises(ProcessError):
        sim.process(not_a_generator)  # function object, not generator


def test_process_return_value_settles_event():
    sim = Simulator()

    def proc():
        yield 1.0
        return "result"

    p = sim.process(proc())
    assert sim.run_until_event(p) == "result"


def test_process_exception_fails_event():
    sim = Simulator()

    def proc():
        yield 1.0
        raise ValueError("inside")

    p = sim.process(proc())
    with pytest.raises(ValueError):
        sim.run_until_event(p)


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    ev = sim.event()
    got = []

    def proc():
        value = yield ev
        got.append((sim.now, value))

    sim.process(proc())
    sim.schedule(3.0, ev.succeed, "payload")
    sim.run()
    assert got == [(3.0, "payload")]


def test_failed_event_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def proc():
        try:
            yield ev
        except KeyError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.schedule(1.0, ev.fail, KeyError("deliberate"))
    sim.run()
    assert caught == ["'deliberate'"]


def test_process_joins_another_process():
    sim = Simulator()
    order = []

    def child():
        yield 5.0
        order.append(("child-done", sim.now))
        return "child-value"

    def parent():
        value = yield sim.process(child())
        order.append(("parent-got", sim.now, value))

    sim.process(parent())
    sim.run()
    assert order == [("child-done", 5.0), ("parent-got", 5.0, "child-value")]


def test_yield_none_is_zero_delay():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield None
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 0.0]


def test_negative_yield_raises_in_process():
    sim = Simulator()
    errors = []

    def proc():
        try:
            yield -1.0
        except ProcessError as exc:
            errors.append(str(exc))

    sim.process(proc())
    sim.run()
    assert len(errors) == 1


def test_bad_yield_type_raises_in_process():
    sim = Simulator()
    errors = []

    def proc():
        try:
            yield "nonsense"
        except ProcessError:
            errors.append(True)

    sim.process(proc())
    sim.run()
    assert errors == [True]


def test_interrupt_raises_interrupt_with_cause():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    p = sim.process(sleeper())
    sim.schedule(10.0, p.interrupt, "reason")
    sim.run()
    assert log == [(10.0, "reason")]


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt:
            pass
        yield 5.0
        log.append(sim.now)

    p = sim.process(sleeper())
    sim.schedule(10.0, p.interrupt)
    sim.run()
    assert log == [15.0]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick():
        yield 1.0

    p = sim.process(quick())
    sim.run()
    with pytest.raises(ProcessError):
        p.interrupt()


def test_stale_wakeup_after_interrupt_ignored():
    """The timeout the process was waiting on must not resume it later."""
    sim = Simulator()
    resumed = []

    def sleeper():
        try:
            yield 50.0
        except Interrupt:
            resumed.append(("interrupted", sim.now))
        yield 100.0
        resumed.append(("woke", sim.now))

    p = sim.process(sleeper())
    sim.schedule(10.0, p.interrupt)
    sim.run()
    # interrupted at 10, then slept 100 -> wakes at 110 exactly once
    assert resumed == [("interrupted", 10.0), ("woke", 110.0)]


def test_alive_reflects_generator_state():
    sim = Simulator()

    def proc():
        yield 1.0

    p = sim.process(proc())
    assert p.alive
    sim.run()
    assert not p.alive


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def proc(tag, period):
        for _ in range(3):
            yield period
            log.append((tag, sim.now))

    sim.process(proc("a", 1.0))
    sim.process(proc("b", 1.0))
    sim.run()
    assert log == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0),
                   ("a", 3.0), ("b", 3.0)]


def test_process_all_of_composition():
    sim = Simulator()

    def proc(duration, value):
        yield duration
        return value

    ps = [sim.process(proc(d, d)) for d in (3.0, 1.0, 2.0)]
    values = sim.run_until_event(sim.all_of(ps))
    assert values == [3.0, 1.0, 2.0]
