"""``Simulator.queued_events`` must stay O(1) and exact at scale.

The counter is maintained incrementally (pushes +1, executions and
cancellations -1; lazy heap removal never touches it), so interleaving
queries with 10^5 pending entries is effectively free.  These tests pin
the exactness invariants that make that possible.
"""

import time

from repro.sim import Simulator

N = 100_000


def _noop():
    pass


def test_exact_under_1e5_pending_entries_mixed_paths():
    sim = Simulator()
    handles = []
    for i in range(N // 2):
        sim.schedule_fast(1.0 + i * 1e-6, _noop)
        handles.append(sim.schedule(2.0 + i * 1e-6, _noop))
    assert sim.queued_events == N

    # Cancellation decrements immediately even though the heap entry is
    # removed lazily.
    for h in handles[: N // 4]:
        h.cancel()
        h.cancel()  # idempotent: no double decrement
    assert sim.queued_events == N - N // 4

    sim.run(until=1.5)  # executes all fast entries
    assert sim.queued_events == N // 4
    sim.run()
    assert sim.queued_events == 0


def test_query_cost_is_independent_of_heap_size():
    sim = Simulator()
    for i in range(N):
        sim.schedule_fast(1.0 + i * 1e-6, _noop)
    # 10^5 queries against a 10^5-entry calendar: a scan-based
    # implementation would be ~10^10 operations; the counter answers
    # each in constant time.  Generous bound — this only guards against
    # an accidental return to O(heap) scanning.
    t0 = time.perf_counter()
    total = 0
    for _ in range(N):
        total += sim.queued_events
    elapsed = time.perf_counter() - t0
    assert total == N * N
    assert elapsed < 2.0
