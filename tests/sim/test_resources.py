"""Unit tests for Resource / Store / Container primitives."""

import pytest

from repro.errors import ResourceError
from repro.sim import Container, Resource, Simulator, Store


# -- Resource -----------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_grants_next_in_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    res.release(first)
    assert second.triggered and not third.triggered
    res.release(second)
    assert third.triggered


def test_resource_double_release_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    req = res.request()
    res.release(req)
    with pytest.raises(ResourceError):
        res.release(req)


def test_resource_release_unknown_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    other = sim.event()
    with pytest.raises(ResourceError):
        res.release(other)


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Resource(sim, capacity=0)


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    queued = res.request()
    res.cancel(queued)
    res.release(held)
    assert not queued.triggered
    assert res.in_use == 0


def test_resource_cancel_granted_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    with pytest.raises(ResourceError):
        res.cancel(held)


def test_resource_cancel_unknown_is_noop():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    res.cancel(sim.event())  # never queued: tolerated, no effect
    res.release(held)
    assert res.in_use == 0 and res.queue_length == 0


def test_resource_cancel_skips_to_live_waiter_after_compaction():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    # Enough cancellations to trip the tombstone compaction threshold,
    # with live waiters interleaved before/between/after.
    early = res.request()
    doomed = [res.request() for _ in range(200)]
    late = res.request()
    for req in doomed:
        res.cancel(req)
    assert res.queue_length == 2
    res.release(held)
    assert early.triggered
    res.release(early)
    assert late.triggered
    assert not any(req.triggered for req in doomed)


def test_resource_mass_cancellation_is_sub_linear():
    """Regression for the O(n) ``deque.remove`` per cancel: 50k
    cancellations against a 50k-deep queue must complete in far less
    time than the quadratic scan would take (minutes)."""
    import time

    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    survivors_head = res.request()
    doomed = [res.request() for _ in range(50_000)]
    survivors_tail = res.request()
    t0 = time.perf_counter()
    for req in doomed:
        res.cancel(req)
    elapsed = time.perf_counter() - t0
    assert elapsed < 2.0  # quadratic removal takes minutes at this depth
    assert res.queue_length == 2
    res.release(held)
    assert survivors_head.triggered
    res.release(survivors_head)
    assert survivors_tail.triggered


def test_resource_with_processes():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(tag):
        req = res.request()
        yield req
        yield 10.0
        res.release(req)
        done.append((tag, sim.now))

    for tag in range(4):
        sim.process(user(tag))
    sim.run()
    # two batches of two: finish at t=10 and t=20
    assert done == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]


# -- Store --------------------------------------------------------------------

def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    sim.run()
    assert got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    results = []

    def consumer():
        item = yield store.get()
        results.append((sim.now, item))

    sim.process(consumer())
    sim.schedule(5.0, store.put, "late")
    sim.run()
    assert results == [(5.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = [store.get() for _ in range(5)]
    sim.run()
    assert [g.value for g in got] == [0, 1, 2, 3, 4]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    p1 = store.put("a")
    p2 = store.put("b")
    assert p1.triggered and not p2.triggered
    g = store.get()
    sim.run()
    assert g.value == "a"
    assert p2.triggered
    assert store.items == ("b",)


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Store(sim, capacity=0)


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)
    store.put({"kind": "a", "v": 1})
    store.put({"kind": "b", "v": 2})
    got = store.get(lambda item: item["kind"] == "b")
    sim.run()
    assert got.value["v"] == 2
    assert store.items[0]["kind"] == "a"


def test_store_filtered_get_waits_for_match():
    sim = Simulator()
    store = Store(sim)
    store.put("wrong")
    results = []

    def consumer():
        item = yield store.get(lambda x: x == "right")
        results.append((sim.now, item))

    sim.process(consumer())
    sim.schedule(3.0, store.put, "right")
    sim.run()
    assert results == [(3.0, "right")]
    assert store.items == ("wrong",)


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    store.put(2)
    sim.run()
    assert store.try_get() == 1
    assert store.try_get(lambda x: x == 99) is None
    assert store.try_get() == 2


# -- Container ----------------------------------------------------------------

def test_container_levels():
    sim = Simulator()
    c = Container(sim, capacity=10, init=4)
    assert c.level == 4
    c.get(3)
    sim.run()
    assert c.level == 1


def test_container_get_blocks_until_enough():
    sim = Simulator()
    c = Container(sim, capacity=10, init=0)
    results = []

    def consumer():
        yield c.get(5)
        results.append(sim.now)

    sim.process(consumer())
    sim.schedule(1.0, c.put, 3)
    sim.schedule(2.0, c.put, 3)
    sim.run()
    assert results == [2.0]
    assert c.level == 1


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    c = Container(sim, capacity=5, init=5)
    done = []

    def producer():
        yield c.put(2)
        done.append(sim.now)

    sim.process(producer())
    sim.schedule(4.0, lambda: c.get(3))
    sim.run()
    assert done == [4.0]
    assert c.level == 4


def test_container_validation():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Container(sim, capacity=0)
    with pytest.raises(ResourceError):
        Container(sim, capacity=5, init=9)
    c = Container(sim, capacity=5)
    with pytest.raises(ResourceError):
        c.get(0)
    with pytest.raises(ResourceError):
        c.put(-1)
