"""Property-based tests of the DES kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator, PRIORITY_LATE, PRIORITY_NORMAL, PRIORITY_URGENT


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6),
                       min_size=1, max_size=60))
@settings(max_examples=150, deadline=None)
def test_property_execution_never_goes_back_in_time(delays):
    """Whatever the schedule, callbacks observe a non-decreasing clock."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert sim.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=1, max_size=40),
       cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_property_cancelled_events_never_run(delays, cancel_mask):
    sim = Simulator()
    ran = []
    handles = []
    for i, d in enumerate(delays):
        handles.append(sim.schedule(d, ran.append, i))
    for i, (h, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            h.cancel()
    sim.run()
    cancelled = {i for i, (h, c) in enumerate(zip(handles, cancel_mask))
                 if c}
    assert set(ran) == set(range(len(delays))) - cancelled


@given(n=st.integers(min_value=1, max_value=30),
       seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_property_identical_runs_execute_identically(n, seed):
    """Two simulators fed the same schedule replay event-for-event."""
    def build():
        sim = Simulator(seed=seed)
        log = []
        rng = sim.rng("workload")
        for i in range(n):
            sim.schedule(float(rng.random() * 100),
                         lambda i=i: log.append((i, sim.now)))
        sim.run()
        return log

    assert build() == build()


@given(n_per_priority=st.integers(min_value=1, max_value=10))
@settings(max_examples=50, deadline=None)
def test_property_priorities_partition_same_time_events(n_per_priority):
    sim = Simulator()
    log = []
    for i in range(n_per_priority):
        sim.schedule(1.0, log.append, ("late", i), priority=PRIORITY_LATE)
        sim.schedule(1.0, log.append, ("normal", i),
                     priority=PRIORITY_NORMAL)
        sim.schedule(1.0, log.append, ("urgent", i),
                     priority=PRIORITY_URGENT)
    sim.run()
    labels = [tag for tag, _ in log]
    # All urgents before all normals before all lates.
    assert labels == (["urgent"] * n_per_priority
                      + ["normal"] * n_per_priority
                      + ["late"] * n_per_priority)
    # And FIFO within each class.
    for cls in ("urgent", "normal", "late"):
        idxs = [i for tag, i in log if tag == cls]
        assert idxs == sorted(idxs)
