"""Unit tests for monitors: TimeSeries, Tally, Counter, summary."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sim import Counter, Tally, TimeSeries, summary


# -- TimeSeries ---------------------------------------------------------------

def test_timeseries_records_and_reads_back():
    ts = TimeSeries("n")
    ts.record(0.0, 1.0)
    ts.record(2.0, 3.0)
    assert len(ts) == 2
    assert ts.times.tolist() == [0.0, 2.0]
    assert ts.values.tolist() == [1.0, 3.0]
    assert ts.last() == 3.0


def test_timeseries_rejects_non_monotone_time():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(AnalysisError):
        ts.record(4.0, 2.0)


def test_timeseries_allows_same_time_resample():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    ts.record(1.0, 20.0)
    assert ts.value_at(1.0) == 20.0


def test_timeseries_value_at_step_semantics():
    ts = TimeSeries()
    ts.record(0.0, 1.0)
    ts.record(10.0, 5.0)
    assert ts.value_at(0.0) == 1.0
    assert ts.value_at(9.999) == 1.0
    assert ts.value_at(10.0) == 5.0
    assert ts.value_at(100.0) == 5.0
    with pytest.raises(AnalysisError):
        ts.value_at(-1.0)


def test_timeseries_time_average():
    ts = TimeSeries()
    ts.record(0.0, 0.0)
    ts.record(10.0, 10.0)
    # value 0 for t in [0,10), value 10 for [10,20] -> avg 5 over [0,20]
    assert ts.time_average(until=20.0) == pytest.approx(5.0)


def test_timeseries_time_average_single_point():
    ts = TimeSeries()
    ts.record(3.0, 7.0)
    assert ts.time_average(until=3.0) == 7.0


def test_timeseries_minmax_and_empty_errors():
    ts = TimeSeries()
    with pytest.raises(AnalysisError):
        ts.last()
    with pytest.raises(AnalysisError):
        ts.time_average()
    ts.record(0.0, 4.0)
    ts.record(1.0, -2.0)
    assert ts.max() == 4.0
    assert ts.min() == -2.0


# -- Tally --------------------------------------------------------------------

def test_tally_streaming_matches_numpy():
    rng = np.random.default_rng(0)
    data = rng.normal(10.0, 3.0, size=1000)
    tally = Tally()
    for x in data:
        tally.record(x)
    assert tally.count == 1000
    assert tally.mean == pytest.approx(float(data.mean()))
    assert tally.std == pytest.approx(float(data.std(ddof=1)))
    assert tally.minimum == pytest.approx(float(data.min()))
    assert tally.maximum == pytest.approx(float(data.max()))
    assert tally.total == pytest.approx(float(data.sum()))


def test_tally_record_many_merges_correctly():
    rng = np.random.default_rng(1)
    a = rng.random(100)
    b = rng.random(57)
    tally = Tally()
    tally.record_many(a)
    tally.record_many(b)
    both = np.concatenate([a, b])
    assert tally.count == 157
    assert tally.mean == pytest.approx(float(both.mean()))
    assert tally.variance == pytest.approx(float(both.var(ddof=1)))


def test_tally_record_many_empty_is_noop():
    tally = Tally()
    tally.record_many([])
    assert tally.count == 0


def test_tally_empty_errors():
    tally = Tally("t")
    with pytest.raises(AnalysisError):
        _ = tally.mean
    tally.record(1.0)
    with pytest.raises(AnalysisError):
        _ = tally.variance


# -- Counter ------------------------------------------------------------------

def test_counter_incr_and_read():
    c = Counter()
    c.incr("msg")
    c.incr("msg", 4)
    assert c["msg"] == 5
    assert c["absent"] == 0
    assert c.as_dict() == {"msg": 5}


def test_counter_rejects_negative():
    c = Counter()
    with pytest.raises(AnalysisError):
        c.incr("x", -1)


# -- summary ------------------------------------------------------------------

def test_summary_basic():
    s = summary([1.0, 2.0, 3.0, 4.0])
    assert s["n"] == 4
    assert s["mean"] == pytest.approx(2.5)
    assert s["median"] == pytest.approx(2.5)
    assert s["min"] == 1.0 and s["max"] == 4.0
    assert s["std"] == pytest.approx(np.std([1, 2, 3, 4], ddof=1))


def test_summary_single_value_std_zero():
    s = summary([7.0])
    assert s["std"] == 0.0


def test_summary_empty_raises():
    with pytest.raises(AnalysisError):
        summary([])
