"""TimerWheel: shared slotted timers (one calendar entry per tick)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator, TimerWheel


def test_interval_validation():
    sim = Simulator()
    for bad in (0.0, -1.0, float("inf"), float("nan")):
        with pytest.raises(ConfigurationError):
            TimerWheel(sim, bad)
    with pytest.raises(ConfigurationError):
        TimerWheel(sim, 1.0, jitter_s=1.0)  # jitter must be < interval
    with pytest.raises(ConfigurationError):
        TimerWheel(sim, 1.0, jitter_s=-0.1)


def test_single_subscriber_ticks_on_timetable():
    sim = Simulator()
    wheel = TimerWheel(sim, 2.5)
    times = []
    wheel.subscribe(times.append)
    sim.run(until=10.1)
    assert times == [2.5, 5.0, 7.5, 10.0]
    assert wheel.ticks == 4


def test_one_calendar_entry_per_tick_for_many_subscribers():
    sim = Simulator()
    wheel = TimerWheel(sim, 1.0)
    fired = [0]

    def on_tick(_t, fired=fired):
        fired[0] += 1

    for _ in range(1000):
        wheel.subscribe(on_tick)
    # 1000 subscribers share ONE pending entry.
    assert sim.queued_events == 1
    sim.run(until=3.5)
    assert fired[0] == 3 * 1000
    assert sim.queued_events == 1  # the next tick, already armed


def test_subscribers_fire_in_subscription_order():
    sim = Simulator()
    wheel = TimerWheel(sim, 1.0)
    order = []
    wheel.subscribe(lambda t: order.append("a"))
    wheel.subscribe(lambda t: order.append("b"))
    wheel.subscribe(lambda t: order.append("c"))
    sim.run(until=1.0)
    assert order == ["a", "b", "c"]


def test_lazy_disarm_and_rearm_resets_origin():
    sim = Simulator()
    wheel = TimerWheel(sim, 1.0)
    times = []
    token = wheel.subscribe(times.append)
    sim.run(until=2.0)
    assert times == [1.0, 2.0]
    wheel.unsubscribe(token)
    sim.run(until=5.25)  # in-flight tick at t=3 finds nobody and disarms
    assert times == [1.0, 2.0]
    assert not wheel.armed
    wheel.subscribe(times.append)  # re-arm: origin = now (5.25)
    sim.run(until=8.0)
    assert times == [1.0, 2.0, 6.25, 7.25]


def test_timetable_is_drift_free():
    sim = Simulator()
    wheel = TimerWheel(sim, 0.1)  # 0.1 accumulates float error if summed
    times = []
    wheel.subscribe(times.append)
    sim.run(until=1000.0)
    # Tick k must be exactly origin + k * interval, not a running sum.
    assert len(times) == 10000
    assert times[-1] == 10000 * 0.1
    assert times[4999] == 5000 * 0.1


def test_jitter_delays_firing_but_not_nominal_time():
    sim = Simulator(seed=7)
    wheel = TimerWheel(sim, 10.0, jitter_s=2.0)
    observed = []
    wheel.subscribe(lambda t: observed.append((t, sim.now)))
    sim.run(until=100.0)
    assert len(observed) >= 8
    for nominal, actual in observed:
        assert nominal == pytest.approx(round(nominal / 10.0) * 10.0)
        assert nominal <= actual < nominal + 2.0


def test_unsubscribe_is_idempotent_and_scoped():
    sim = Simulator()
    wheel = TimerWheel(sim, 1.0)
    a, b = [], []
    ta = wheel.subscribe(a.append)
    wheel.subscribe(b.append)
    wheel.unsubscribe(ta)
    wheel.unsubscribe(ta)
    sim.run(until=2.0)
    assert a == [] and b == [1.0, 2.0]
