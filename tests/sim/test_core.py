"""Unit tests for the DES kernel: clock, calendar, events, combinators."""

import math

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import (
    Event,
    Simulator,
    PRIORITY_LATE,
    PRIORITY_URGENT,
)


def test_clock_starts_at_start_time():
    sim = Simulator(start_time=5.0)
    assert sim.now == 5.0


def test_invalid_start_time_rejected():
    with pytest.raises(SchedulingError):
        Simulator(start_time=math.inf)


def test_schedule_and_run_executes_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(3.0, log.append, "c")
    sim.schedule(1.0, log.append, "a")
    sim.schedule(2.0, log.append, "b")
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fifo_order():
    sim = Simulator()
    log = []
    for tag in "abcde":
        sim.schedule(1.0, log.append, tag)
    sim.run()
    assert log == list("abcde")


def test_priority_breaks_ties():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "late", priority=PRIORITY_LATE)
    sim.schedule(1.0, log.append, "normal")
    sim.schedule(1.0, log.append, "urgent", priority=PRIORITY_URGENT)
    sim.run()
    assert log == ["urgent", "normal", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(1.0, lambda: None)


def test_non_callable_rejected():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.schedule(1.0, "not callable")


def test_cancel_prevents_execution():
    sim = Simulator()
    log = []
    handle = sim.schedule(1.0, log.append, "x")
    handle.cancel()
    sim.run()
    assert log == []
    assert handle.cancelled and not handle.executed


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_run_until_stops_before_later_events():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "a")
    sim.schedule(10.0, log.append, "b")
    sim.run(until=5.0)
    assert log == ["a"]
    assert sim.now == 5.0  # clock advanced to the limit
    sim.run()
    assert log == ["a", "b"]


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.run(until=1.0)


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 7


def test_nested_scheduling_from_callback():
    sim = Simulator()
    log = []

    def outer():
        log.append(("outer", sim.now))
        sim.schedule(2.0, inner)

    def inner():
        log.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert log == [("outer", 1.0), ("inner", 3.0)]


def test_stop_halts_run():
    sim = Simulator()
    log = []
    sim.schedule(1.0, log.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, log.append, "b")
    sim.run()
    assert log == ["a"]
    sim.run()
    assert log == ["a", "b"]


def test_step_returns_false_on_empty_calendar():
    sim = Simulator()
    assert sim.step() is False


def test_trace_hook_called():
    seen = []
    sim = Simulator(trace=lambda t, cb, args: seen.append(t))
    sim.schedule(1.5, lambda: None)
    sim.run()
    assert seen == [1.5]


# -- Event -----------------------------------------------------------------

def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event("e")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    ev.succeed(42)
    sim.run()
    assert got == [42]
    assert ev.triggered and ev.ok and ev.value == 42


def test_event_fail_delivers_exception():
    sim = Simulator()
    ev = sim.event("e")
    got = []
    ev.add_callback(lambda e: got.append((e.ok, e.value)))
    err = RuntimeError("boom")
    ev.fail(err)
    sim.run()
    assert got == [(False, err)]


def test_event_double_settle_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_event_value_before_settle_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok


def test_callback_on_settled_event_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    sim.run()
    assert got == ["v"]


def test_timeout_event():
    sim = Simulator()
    ev = sim.timeout(4.0, value="done")
    sim.run()
    assert ev.triggered and ev.value == "done"
    assert sim.now == 4.0


def test_run_until_event():
    sim = Simulator()
    ev = sim.timeout(2.0, value=7)
    sim.schedule(100.0, lambda: None)
    value = sim.run_until_event(ev)
    assert value == 7
    assert sim.now == 2.0


def test_run_until_event_propagates_failure():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(1.0, ev.fail, ValueError("bad"))
    with pytest.raises(ValueError):
        sim.run_until_event(ev)


def test_run_until_event_drained_calendar_raises():
    sim = Simulator()
    ev = sim.event()  # never settled
    with pytest.raises(SimulationError):
        sim.run_until_event(ev)


def test_run_until_event_time_limit():
    sim = Simulator()
    ev = sim.event()
    sim.schedule(100.0, ev.succeed)
    with pytest.raises(SimulationError):
        sim.run_until_event(ev, limit=10.0)


# -- combinators ------------------------------------------------------------

def test_all_of_collects_values_in_order():
    sim = Simulator()
    e1 = sim.timeout(3.0, "a")
    e2 = sim.timeout(1.0, "b")
    combined = sim.all_of([e1, e2])
    value = sim.run_until_event(combined)
    assert value == ["a", "b"]
    assert sim.now == 3.0


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    assert sim.run_until_event(combined) == []


def test_all_of_fails_on_first_failure():
    sim = Simulator()
    bad = sim.event()
    sim.schedule(1.0, bad.fail, KeyError("nope"))
    good = sim.timeout(5.0)
    combined = sim.all_of([bad, good])
    with pytest.raises(KeyError):
        sim.run_until_event(combined)
    assert sim.now == 1.0


def test_any_of_settles_on_first():
    sim = Simulator()
    slow = sim.timeout(10.0, "slow")
    fast = sim.timeout(2.0, "fast")
    combined = sim.any_of([slow, fast])
    assert sim.run_until_event(combined) == "fast"
    assert sim.now == 2.0


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


# -- determinism -------------------------------------------------------------

def test_identical_seeds_identical_streams():
    a = Simulator(seed=123)
    b = Simulator(seed=123)
    assert a.rng("x").random(5).tolist() == b.rng("x").random(5).tolist()


def test_distinct_streams_differ():
    sim = Simulator(seed=123)
    assert sim.rng("x").random(5).tolist() != sim.rng("y").random(5).tolist()


def test_stream_is_cached():
    sim = Simulator(seed=1)
    assert sim.rng("a") is sim.rng("a")
