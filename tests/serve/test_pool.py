"""Warm-standby pool: prewarm, hit/miss, husk discard, refill, reclaim."""

import pytest

from repro.core import InstanceSpec, OddCISystem
from repro.errors import ConfigurationError
from repro.serve import InstancePool, PoolConfig


def make_spec(target_size):
    return InstanceSpec(target_size=target_size, image_name="pool-test",
                        image_bits=1e6, heartbeat_interval_s=10.0,
                        backend_id="serve")


def pooled_system(seed=0, n_pnas=12, **cfg):
    system = OddCISystem(seed=seed, maintenance_interval_s=20.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    config = PoolConfig(**{"standby_size": 4,
                           "provision_timeout_s": 120.0, **cfg})
    pool = InstancePool(system.sim, system.provider, config, make_spec)
    return system, pool


# -- config -------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"warm_target": -1},
    {"warm_target": 3, "max_warm": 2},
    {"standby_size": 0},
    {"refill_interval_s": 0.0},
    {"provision_timeout_s": 0.0},
])
def test_pool_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        PoolConfig(**kwargs)


def test_warm_target_zero_is_cold_only():
    system, pool = pooled_system(warm_target=0)
    pool.start()
    system.sim.run(until=120.0)
    assert pool.parked == 0
    ticket, warm = pool.acquire(4, tenant="t0", request_id="r0")
    assert not warm
    assert pool.misses == 1
    system.sim.run(until=240.0)
    assert ticket.event.ok
    assert ticket.time_to_ready > 0.0


# -- prewarm / hit ------------------------------------------------------------

def test_prewarm_parks_and_acquire_hits_with_zero_ttr():
    system, pool = pooled_system(warm_target=2)
    pool.start()
    system.sim.run(until=120.0)
    assert pool.parked == 2
    assert pool.prewarmed == 2
    ticket, warm = pool.acquire(4, tenant="t0", request_id="r0")
    assert warm
    assert pool.hits == 1 and pool.misses == 0
    # A warm ticket settles at the current instant: ttr == 0.
    system.sim.run(until=system.sim.now + 1.0)
    assert ticket.event.ok
    assert ticket.time_to_ready == 0.0
    assert ticket.record.size >= 1


def test_acquire_beyond_parked_falls_back_to_cold():
    system, pool = pooled_system(warm_target=1)
    pool.start()
    system.sim.run(until=120.0)
    _t0, warm0 = pool.acquire(4, tenant="t0", request_id="r0")
    _t1, warm1 = pool.acquire(4, tenant="t0", request_id="r1")
    assert warm0 and not warm1
    assert pool.stats()["hit_ratio"] == 0.5


def test_release_parks_up_to_cap_then_dismantles():
    system, pool = pooled_system(warm_target=1, max_warm=1)
    pool.start()
    system.sim.run(until=120.0)
    ticket, warm = pool.acquire(4, tenant="t0", request_id="r0")
    assert warm and pool.parked == 0
    cold, _ = pool.acquire(4, tenant="t0", request_id="r1")
    system.sim.run(until=240.0)
    assert cold.event.ok
    pool.release(ticket.record)          # parks (cap 1)
    assert pool.parked == 1
    pool.release(cold.record)            # over cap: dismantled
    assert pool.parked == 1
    assert cold.record.status.value in ("dismantling", "destroyed")


def test_refill_restores_warm_target_after_acquires():
    # Enough PNAs to host the two held instances AND a full re-fill.
    system, pool = pooled_system(n_pnas=24, warm_target=2,
                                 refill_interval_s=20.0)
    pool.start()
    system.sim.run(until=120.0)
    pool.acquire(4, tenant="t0", request_id="r0")
    pool.acquire(4, tenant="t0", request_id="r1")
    assert pool.parked == 0
    system.sim.run(until=system.sim.now + 200.0)
    assert pool.parked == 2


def test_idle_reclaim_shrinks_surplus_only():
    system, pool = pooled_system(n_pnas=24, warm_target=1, max_warm=3,
                                 refill_interval_s=20.0,
                                 idle_reclaim_s=30.0)
    pool.start()
    system.sim.run(until=120.0)
    # Park two extras above warm_target.
    t0, _ = pool.acquire(4, tenant="t0", request_id="r0")
    c1, _ = pool.acquire(4, tenant="t0", request_id="r1")
    c2, _ = pool.acquire(4, tenant="t0", request_id="r2")
    system.sim.run(until=240.0)
    for ticket in (t0, c1, c2):
        assert ticket.event.ok
        pool.release(ticket.record)
    assert pool.parked == 3
    system.sim.run(until=system.sim.now + 120.0)
    # Surplus above warm_target reclaimed; the target itself is kept.
    assert pool.parked == 1
    assert pool.reclaimed == 2


# -- fault interaction --------------------------------------------------------

def test_crashed_census_husks_are_discarded_not_served():
    system, pool = pooled_system(warm_target=2)
    pool.start()
    system.sim.run(until=120.0)
    assert pool.parked == 2
    # A crash wipes the census: parked records silently read size 0.
    system.controller.crash()
    system.controller.restore()
    ticket, warm = pool.acquire(4, tenant="t0", request_id="r0")
    assert not warm, "a husk must not be handed out as a warm hit"
    assert pool.discarded == 2
    assert pool.misses == 1
    # The cold fallback still provisions once heartbeats reconcile.
    system.sim.run(until=system.sim.now + 200.0)
    assert ticket.event.ok


def test_stop_quiesces_refill_and_drain_dismantles():
    system, pool = pooled_system(warm_target=2, refill_interval_s=20.0)
    pool.start()
    system.sim.run(until=120.0)
    pool.stop()
    pool.drain()
    assert pool.parked == 0
    before = system.sim.events_executed
    system.sim.run(until=system.sim.now + 500.0)
    assert pool.parked == 0, "stopped pool must not refill"
