"""SLO math and recorder bookkeeping."""

import pytest

from repro.serve import SLORecorder, jain_fairness, percentile


def test_percentile_exact_and_empty():
    assert percentile([], 99) == 0.0
    samples = [float(i) for i in range(1, 101)]
    assert percentile(samples, 50) == pytest.approx(50.5)
    assert percentile(samples, 99) == pytest.approx(99.01)
    assert percentile([7.0], 99) == 7.0


def test_jain_fairness_bounds():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.0, 0.0]) == 1.0
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    # One tenant takes everything: 1/n.
    assert jain_fairness([9.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
    assert 1.0 / 3.0 < jain_fairness([6.0, 2.0, 1.0]) < 1.0


def test_recorder_counts_and_summary():
    slo = SLORecorder()
    for _ in range(5):
        slo.note_issued()
    slo.note_admitted(queue_wait_s=0.0)
    slo.note_ready(12.0, warm=False)
    slo.note_completed("t0")
    slo.note_admitted(queue_wait_s=3.0)
    slo.note_ready(0.0, warm=True)
    slo.note_completed("t1")
    slo.note_noop()
    slo.note_rejected("queue_full")
    slo.note_rejected("timeout")
    out = slo.summary()
    assert out["issued"] == 5
    assert out["admitted"] == 2
    assert out["completed"] == 2
    assert out["noops"] == 1
    assert out["rejected"] == {"queue_full": 1, "timeout": 1}
    assert out["rejected_total"] == 2
    assert out["rejection_rate"] == pytest.approx(0.4)
    assert out["lost"] == 0
    assert out["ttr_p50_s"] == pytest.approx(6.0)
    assert out["ttr_warm_p50_s"] == 0.0
    assert out["ttr_cold_p50_s"] == 12.0
    assert out["fairness"] == pytest.approx(1.0)


def test_lost_counts_unsettled_requests():
    slo = SLORecorder()
    slo.note_issued()
    slo.note_issued()
    slo.note_completed("t0")
    assert slo.lost == 1
    assert slo.summary()["lost"] == 1


def test_empty_recorder_summary_is_all_zeros():
    out = SLORecorder().summary()
    assert out["issued"] == 0
    assert out["rejection_rate"] == 0.0
    assert out["ttr_p99_s"] == 0.0
    assert out["fairness"] == 1.0
