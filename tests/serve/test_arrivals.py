"""Open-loop traffic generator: validation, determinism, shape."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import TrafficSpec, generate_requests
from repro.serve.arrivals import KINDS


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


# -- validation ---------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"pattern": "bursty"},
    {"rate_rps": -1.0},
    {"n_tenants": 0},
    {"create_fraction": 0.5, "resize_fraction": 0.1,
     "destroy_fraction": 0.1},          # sums to 0.7
    {"create_fraction": 1.2, "resize_fraction": -0.1,
     "destroy_fraction": -0.1},         # negative fractions
    {"target_size": 0},
    {"hold_s_mean": 0.0},
    {"pattern": "diurnal", "diurnal_depth": 1.5},
    {"pattern": "diurnal", "diurnal_period_s": 0.0},
    {"pattern": "flash", "flash_multiplier": 0.5},
])
def test_spec_validation_rejects(kwargs):
    with pytest.raises(ConfigurationError):
        TrafficSpec(**kwargs)


def test_unknown_request_kind_rejected():
    from repro.serve import ServiceRequest
    with pytest.raises(ConfigurationError):
        ServiceRequest(request_id="r", arrival_s=0.0, tenant="t0",
                       kind="teleport", target_size=4, hold_s=1.0)


# -- determinism --------------------------------------------------------------

@pytest.mark.parametrize("pattern", ("poisson", "diurnal", "flash"))
def test_same_stream_same_schedule(pattern):
    spec = TrafficSpec(pattern=pattern, rate_rps=0.2, horizon_s=400.0)
    assert generate_requests(spec, rng(7)) == generate_requests(spec, rng(7))
    # A different seed really changes the draw.
    assert generate_requests(spec, rng(7)) != generate_requests(spec, rng(8))


# -- shape --------------------------------------------------------------------

def test_requests_are_ordered_within_horizon_with_valid_fields():
    spec = TrafficSpec(rate_rps=0.5, horizon_s=300.0, n_tenants=3)
    requests = generate_requests(spec, rng(1))
    assert requests, "0.5 rps over 300 s must produce arrivals"
    times = [r.arrival_s for r in requests]
    assert times == sorted(times)
    assert all(0.0 <= t < spec.horizon_s for t in times)
    assert [r.request_id for r in requests] == [
        f"req-{i}" for i in range(len(requests))]
    assert {r.tenant for r in requests} <= {"t0", "t1", "t2"}
    assert all(r.kind in KINDS for r in requests)
    assert all(r.hold_s >= 0.0 for r in requests)


def test_kind_mix_follows_fractions():
    spec = TrafficSpec(rate_rps=2.0, horizon_s=2000.0,
                       create_fraction=0.6, resize_fraction=0.3,
                       destroy_fraction=0.1)
    requests = generate_requests(spec, rng(3))
    n = len(requests)
    creates = sum(r.kind == "create" for r in requests) / n
    resizes = sum(r.kind == "resize" for r in requests) / n
    assert abs(creates - 0.6) < 0.05
    assert abs(resizes - 0.3) < 0.05


def test_flash_crowd_concentrates_arrivals_in_window():
    spec = TrafficSpec(pattern="flash", rate_rps=0.2, horizon_s=600.0,
                       flash_at_s=200.0, flash_duration_s=100.0,
                       flash_multiplier=6.0)
    requests = generate_requests(spec, rng(5))
    window = [r for r in requests if 200.0 <= r.arrival_s < 300.0]
    # Window density ~6x the base-rate density elsewhere.
    in_rate = len(window) / 100.0
    out_rate = (len(requests) - len(window)) / 500.0
    assert in_rate > 2.0 * out_rate


def test_diurnal_trough_is_quieter_than_peak():
    spec = TrafficSpec(pattern="diurnal", rate_rps=1.0, horizon_s=600.0,
                       diurnal_period_s=600.0, diurnal_depth=0.9)
    requests = generate_requests(spec, rng(11))
    # Trough at t=0 (and t=600), peak at mid-period t=300.
    trough = sum(1 for r in requests
                 if r.arrival_s < 100.0 or r.arrival_s >= 500.0)
    peak = sum(1 for r in requests if 250.0 <= r.arrival_s < 350.0)
    assert peak > trough
