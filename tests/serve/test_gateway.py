"""Admission control: token bucket, FIFO queue, quotas, typed errors."""

import pytest

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    QuotaExceededError,
)
from repro.serve import GatewayConfig, ServiceGateway, TokenBucket
from repro.serve.arrivals import ServiceRequest
from repro.sim.core import Simulator


def request(i, tenant="t0", kind="create", arrival_s=0.0):
    return ServiceRequest(request_id=f"req-{i}", arrival_s=arrival_s,
                          tenant=tenant, kind=kind, target_size=4,
                          hold_s=30.0)


def gateway(sim=None, **cfg):
    sim = sim or Simulator()
    return sim, ServiceGateway(sim, GatewayConfig(**cfg))


# -- config -------------------------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"admission_rate": -1.0},
    {"queue_cap": -1},
    {"admission_rate": 1.0, "burst": 0},
])
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        GatewayConfig(**kwargs)


# -- token bucket -------------------------------------------------------------

def test_bucket_burst_then_lazy_refill():
    bucket = TokenBucket(rate=1.0, burst=2, now=0.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    # One token accrues per second; caps at burst.
    assert bucket.try_take(1.0)
    assert not bucket.try_take(1.0)
    bucket.refill(100.0)
    assert bucket.tokens == 2.0


def test_bucket_maturity_time_is_exact():
    bucket = TokenBucket(rate=0.5, burst=1, now=0.0)
    assert bucket.try_take(0.0)
    # Head of queue: 1 token at 0.5/s from empty = 2 s out.
    assert bucket.maturity_time(0.0, 0) == pytest.approx(2.0)
    assert bucket.maturity_time(0.0, 1) == pytest.approx(4.0)
    # Tokens already available: matures now.
    bucket.refill(2.0)
    assert bucket.maturity_time(2.0, 0) == pytest.approx(2.0)


def test_bucket_tolerates_float_dust_at_maturity():
    """Regression: a drain at a token's exact maturity can observe
    ``tokens = 1 - ulp`` after lazy refill; a strict ``>= 1`` check
    then re-arms at a maturity that rounds to ``now`` — a same-instant
    reschedule loop that froze full-scale flash_crowd runs."""
    bucket = TokenBucket(rate=0.08, burst=1, now=0.0)
    bucket.tokens = 1.0 - 1e-12
    assert bucket.maturity_time(500.0, 0) == 500.0
    assert bucket.try_take(500.0)
    assert bucket.tokens >= 0.0


# -- admission ----------------------------------------------------------------

def test_no_rate_limit_dispatches_everything_synchronously():
    sim, gw = gateway()
    seen = []
    for i in range(5):
        gw.submit(request(i), seen.append)
    assert [r.request_id for r in seen] == [f"req-{i}" for i in range(5)]
    assert gw.queue_depth == 0


def test_queue_preserves_fifo_and_never_strands():
    """Regression: an arrival landing exactly when a queued request's
    token matures must not steal it (the arrival callback can run
    before the drain at the same instant).  Pre-fix this wedged the
    tier; now the head drains first and the newcomer queues behind."""
    sim, gw = gateway(admission_rate=1.0, burst=1)
    seen = []

    def arrive(i):
        gw.submit(request(i, arrival_s=sim.now),
                  lambda r: seen.append((sim.now, r.request_id)))

    # Planted up front, so the t=1.0 arrival event sits in the calendar
    # ahead of the drain the t=0.5 enqueue will schedule for t=1.0.
    sim.call_at(0.0, arrive, 0)
    sim.call_at(0.5, arrive, 1)
    sim.call_at(1.0, arrive, 2)
    sim.run(until=5.0)
    assert [rid for _t, rid in seen] == ["req-0", "req-1", "req-2"]
    times = [t for t, _rid in seen]
    assert times[0] == 0.0            # burst token
    assert times[1] == pytest.approx(1.0)
    assert times[2] == pytest.approx(2.0)
    assert gw.queue_depth == 0


def test_arrival_never_jumps_a_nonempty_queue():
    sim, gw = gateway(admission_rate=1.0, burst=1)
    seen = []
    gw.submit(request(0), seen.append)       # takes the burst token
    gw.submit(request(1), seen.append)       # queued
    # White-box: even with a token in hand, a newcomer must queue.
    gw.bucket.tokens = 1.0
    gw.submit(request(2), seen.append)
    assert [r.request_id for r in seen] == ["req-0"]
    assert gw.queue_depth == 2
    sim.run(until=5.0)
    assert [r.request_id for r in seen] == ["req-0", "req-1", "req-2"]


def test_queue_full_rejects_with_structured_context():
    sim, gw = gateway(admission_rate=1.0, burst=1, queue_cap=1)
    gw.submit(request(0), lambda r: None)
    gw.submit(request(1), lambda r: None)
    with pytest.raises(AdmissionError) as excinfo:
        gw.submit(request(2, tenant="t7"), lambda r: None)
    err = excinfo.value
    assert err.reason == "queue_full"
    assert err.tenant == "t7"
    assert err.request_id == "req-2"
    assert err.context() == {"tenant": "t7", "request_id": "req-2",
                             "reason": "queue_full"}


def test_queue_timeout_rejects_predicted_long_waits():
    sim, gw = gateway(admission_rate=0.1, burst=1, max_queue_wait_s=5.0)
    gw.submit(request(0), lambda r: None)
    # Next token matures 10 s out > 5 s bound: reject, don't enqueue.
    with pytest.raises(AdmissionError) as excinfo:
        gw.submit(request(1), lambda r: None)
    assert excinfo.value.reason == "queue_timeout"
    assert gw.queue_depth == 0


# -- quotas -------------------------------------------------------------------

def test_max_concurrent_quota_reserve_and_release():
    sim, gw = gateway(max_concurrent=2)
    gw.submit(request(0), lambda r: None)
    gw.submit(request(1), lambda r: None)
    with pytest.raises(QuotaExceededError) as excinfo:
        gw.submit(request(2), lambda r: None)
    assert excinfo.value.reason == "max_concurrent"
    assert isinstance(excinfo.value, AdmissionError)
    # Non-creates don't hold concurrency slots.
    gw.submit(request(3, kind="destroy"), lambda r: None)
    # Releasing a slot re-opens admission.
    gw.finish("t0", node_hours=0.5)
    gw.submit(request(4), lambda r: None)
    assert gw.account("t0").node_hours == pytest.approx(0.5)


def test_node_hour_budget_exhaustion():
    sim, gw = gateway(node_hour_budget=1.0)
    gw.submit(request(0), lambda r: None)
    gw.finish("t0", node_hours=1.0)
    with pytest.raises(QuotaExceededError) as excinfo:
        gw.submit(request(1), lambda r: None)
    assert excinfo.value.reason == "node_hours"


def test_quotas_are_per_tenant():
    sim, gw = gateway(max_concurrent=1)
    gw.submit(request(0, tenant="t0"), lambda r: None)
    gw.submit(request(1, tenant="t1"), lambda r: None)  # other tenant: fine
    with pytest.raises(QuotaExceededError):
        gw.submit(request(2, tenant="t0"), lambda r: None)


def test_stats_are_deterministic_and_sorted():
    sim, gw = gateway(max_concurrent=1)
    gw.submit(request(0, tenant="tb"), lambda r: None)
    gw.submit(request(1, tenant="ta"), lambda r: None)
    with pytest.raises(QuotaExceededError):
        gw.submit(request(2, tenant="tb"), lambda r: None)
    stats = gw.stats()
    assert list(stats["tenants"]) == ["ta", "tb"]
    assert stats["tenants"]["tb"] == {"admitted": 1, "rejected": 1,
                                      "node_hours": 0.0}
