"""ServiceTier end to end: liveness, accounting, determinism."""

import pytest

from repro.core import OddCISystem
from repro.errors import ProvisioningError
from repro.serve import (
    GatewayConfig,
    PoolConfig,
    ServiceTier,
    TrafficSpec,
)


def make_tier(seed=0, n_pnas=16, *, traffic=None, gateway=None, pool=None):
    system = OddCISystem(seed=seed, maintenance_interval_s=15.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    traffic = traffic or TrafficSpec(rate_rps=0.04, horizon_s=300.0,
                                     target_size=4, hold_s_mean=40.0)
    return ServiceTier(system, traffic, gateway=gateway, pool=pool,
                       image_bits=1e6, request_timeout_s=120.0)


def test_run_settles_every_request_and_completes_creates():
    tier = make_tier(pool=PoolConfig(warm_target=1, standby_size=4,
                                     provision_timeout_s=120.0))
    out = tier.run()
    assert out["issued"] > 0
    assert out["lost"] == 0
    assert out["completed"] > 0
    assert out["issued"] == (out["completed"] + out["noops"]
                             + out["rejected_total"])
    # Someone completed, so node-hours were charged somewhere.
    charged = sum(t["node_hours"]
                  for t in out["gateway"]["tenants"].values())
    assert charged > 0.0
    # Warm pool saw traffic.
    assert out["pool"]["hits"] + out["pool"]["misses"] > 0


def test_summary_is_deterministic_across_identical_systems():
    a = make_tier(seed=3).run()
    b = make_tier(seed=3).run()
    assert a == b
    c = make_tier(seed=4).run()
    assert a != c


def test_warm_pool_lowers_ttr_at_same_load():
    traffic = TrafficSpec(rate_rps=0.05, horizon_s=300.0,
                          target_size=4, hold_s_mean=40.0)
    cold = make_tier(traffic=traffic, pool=PoolConfig(warm_target=0)).run()
    warm = make_tier(traffic=traffic,
                     pool=PoolConfig(warm_target=2, standby_size=4,
                                     provision_timeout_s=120.0)).run()
    assert cold["lost"] == warm["lost"] == 0
    assert warm["pool"]["hit_ratio"] > 0.0
    assert warm["ttr_p50_s"] < cold["ttr_p50_s"]


def test_requests_without_live_instances_are_noops():
    # All-destroy traffic: no tenant ever owns an instance, so every
    # request settles as a no-op — never a hang, never a loss.
    traffic = TrafficSpec(rate_rps=0.1, horizon_s=200.0,
                          create_fraction=0.0, resize_fraction=0.0,
                          destroy_fraction=1.0)
    out = make_tier(traffic=traffic).run()
    assert out["issued"] > 0
    assert out["noops"] == out["issued"]
    assert out["lost"] == 0


def test_quota_rejections_carry_reason_and_release_slots():
    traffic = TrafficSpec(rate_rps=0.2, horizon_s=200.0,
                          create_fraction=1.0, resize_fraction=0.0,
                          destroy_fraction=0.0, n_tenants=1,
                          hold_s_mean=500.0)  # holds outlive the run
    out = make_tier(gateway=GatewayConfig(max_concurrent=2),
                    traffic=traffic).run()
    assert out["lost"] == 0
    assert out["rejected"].get("max_concurrent", 0) > 0
    # Only the quota'd slots ever became instances.
    assert out["completed"] <= 2 + out["noops"]


def test_start_is_not_reentrant():
    tier = make_tier()
    tier.start()
    with pytest.raises(ProvisioningError):
        tier.start()
