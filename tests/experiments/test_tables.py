"""Tests for the Table I/II/III experiment drivers — these assert the
paper's qualitative findings hold in our reproduction."""

import pytest

from repro.experiments import (
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    render_table1,
    render_table2,
    render_table3,
    run_table1,
    run_table2,
    run_table3,
    summarize_table2,
)


# -- Table I -------------------------------------------------------------------

def test_table1_only_oddci_ticks_all():
    result = run_table1()
    matrix = result["matrix"]
    assert set(matrix) == {"voluntary-computing", "desktop-grid", "iaas",
                           "oddci"}
    for name, row in matrix.items():
        if name == "oddci":
            assert all(row.values())
        else:
            assert not all(row.values())


def test_table1_each_requirement_met_by_someone_besides_oddci():
    """Paper: 'all requirements are addressed by at least one of the
    available solutions'."""
    matrix = run_table1()["matrix"]
    others = [row for name, row in matrix.items() if name != "oddci"]
    for req in ("extremely_high_scalability", "on_demand_instantiation",
                "efficient_setup"):
        assert any(row[req] for row in others), req


def test_table1_render():
    out = render_table1(run_table1())
    assert "Table I" in out
    assert "oddci" in out and "voluntary-computing" in out
    assert "Provisioning measurements" in out


# -- Table II -------------------------------------------------------------------

@pytest.fixture(scope="module")
def table2_records():
    return run_table2(seed=0)


def test_table2_has_twelve_rows(table2_records):
    assert [r["test"] for r in table2_records] == list(range(1, 13))
    assert len(TABLE2_CONFIGS) == 12


def test_table2_stb_ratio_near_paper(table2_records):
    s = summarize_table2(table2_records)
    assert s["stb_in_use_over_pc_mean"] == pytest.approx(20.6, rel=0.10)
    assert s["stb_in_use_over_pc_max_error"] < 0.10  # paper: <= 10% @ 90%


def test_table2_mode_ratio_near_paper(table2_records):
    s = summarize_table2(table2_records)
    assert s["in_use_over_standby_mean"] == pytest.approx(1.65, rel=0.10)
    assert s["in_use_over_standby_max_error"] < 0.17


def test_table2_largest_workload_hours(table2_records):
    """Paper: test #12 takes ~11 h on an in-use STB."""
    s = summarize_table2(table2_records)
    assert 8 * 3600 < s["largest_in_use_s"] < 15 * 3600


def test_table2_large_tests_dominate_small(table2_records):
    small = [r["pc_s"] for r in table2_records if r["category"] == "local-small"]
    large = [r["pc_s"] for r in table2_records if r["category"] == "local-large"]
    assert max(small) < min(large)


def test_table2_deterministic_under_seed():
    a = run_table2(seed=0)
    b = run_table2(seed=0)
    assert a == b
    c = run_table2(seed=1)
    assert a != c


def test_table2_render(table2_records):
    out = render_table2(table2_records)
    assert "Table II" in out
    assert "20.6x" in out  # the paper reference annotation
    assert "11 h" in out


# -- Table III ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def table3_records():
    return run_table3(seed=0)


def test_table3_three_remote_tests(table3_records):
    assert [r["test"] for r in table3_records] == [13, 14, 15]
    assert len(TABLE3_CONFIGS) == 3


def test_table3_device_gap_nearly_vanishes(table3_records):
    """Remote processing: STB within ~30% of the PC, not 20x."""
    for r in table3_records:
        assert 0.8 < r["in_use_over_pc"] < 1.5


def test_table3_times_dominated_by_server(table3_records):
    for r, config in zip(table3_records, TABLE3_CONFIGS):
        assert r["pc_s"] > config.server_seconds * 0.8


def test_table3_render(table3_records):
    out = render_table3(table3_records)
    assert "Table III" in out
    assert "reconstructed" in out
