"""Tests for the ablation and scalability experiment drivers."""

import pytest

from repro.experiments import (
    render_ablation,
    render_scalability,
    run_carousel_composition,
    run_heartbeat_intervals,
    run_probability_policies,
    run_scalability,
)


# -- A1: carousel composition ---------------------------------------------------

@pytest.fixture(scope="module")
def composition_records():
    return run_carousel_composition(n_samples=20_000, seed=0)


def test_composition_filler_inflates_wakeup(composition_records):
    ws = [r["w_wait_for_start_s"] for r in composition_records]
    assert ws == sorted(ws)  # more filler, slower wakeup
    # With filler = 2x the image, the carousel carries 3 images' worth of
    # content: W -> (0.5*3 + 1)*I/beta ~ 1.67x the ideal 1.5*I/beta.
    assert composition_records[-1]["w_over_ideal"] > 1.5


def test_composition_image_dominated_matches_paper_model(
        composition_records):
    none = composition_records[0]
    # With no filler W is within ~6% of 1.5 I/beta (Xlet+DSM-CC overhead).
    assert 1.0 <= none["w_over_ideal"] < 1.1


def test_composition_resume_never_worse(composition_records):
    for r in composition_records:
        assert r["w_resume_s"] <= r["w_wait_for_start_s"] + 1e-9
        assert r["resume_speedup"] >= 1.0
    # With heavy filler, resume's advantage shrinks (mid-window requests
    # are rarer), so the biggest win is in the image-dominated case.
    assert composition_records[0]["resume_speedup"] >= \
        composition_records[-1]["resume_speedup"]


def test_composition_render(composition_records):
    out = render_ablation(composition_records, "A1")
    assert "A1" in out and "filler_fraction" in out


# -- A2: probability policies ------------------------------------------------------

@pytest.fixture(scope="module")
def policy_records():
    return run_probability_policies(population=50_000, target=5_000, seed=0)


def test_policies_all_converge(policy_records):
    for r in policy_records:
        assert r["recruited"] >= 0.95 * r["target"], r["policy"]


def test_fixed_one_overshoots_massively(policy_records):
    fixed = next(r for r in policy_records if r["policy"] == "fixed-1.0")
    # probability 1 recruits the whole idle population in one round
    assert fixed["rounds"] == 1
    assert fixed["overshoot"] > 5.0


def test_deficit_policy_converges_tightly(policy_records):
    deficit = next(r for r in policy_records if r["policy"] == "deficit-1.1")
    assert deficit["overshoot"] < 0.15
    assert deficit["rounds"] <= 5


def test_deficit_beats_fixed_on_overshoot(policy_records):
    by_name = {r["policy"]: r for r in policy_records}
    assert by_name["deficit-1.1"]["overshoot"] < \
        by_name["fixed-0.5"]["overshoot"]


def test_biased_idle_estimate_still_converges():
    records = run_probability_policies(
        population=50_000, target=5_000, idle_estimate_error=0.5, seed=1)
    deficit = next(r for r in records if r["policy"] == "deficit-1.1")
    assert deficit["recruited"] >= 0.95 * deficit["target"]


# -- A3: heartbeat intervals ---------------------------------------------------------

@pytest.fixture(scope="module")
def heartbeat_records():
    return run_heartbeat_intervals(intervals_s=(5.0, 20.0, 60.0), seed=0)


def test_heartbeat_all_recover(heartbeat_records):
    assert all(r["recovered"] for r in heartbeat_records)


def test_shorter_heartbeat_faster_recovery(heartbeat_records):
    recs = sorted(heartbeat_records, key=lambda r: r["heartbeat_interval_s"])
    assert recs[0]["recovery_s"] < recs[-1]["recovery_s"]


def test_shorter_heartbeat_higher_controller_load(heartbeat_records):
    recs = sorted(heartbeat_records, key=lambda r: r["heartbeat_interval_s"])
    assert recs[0]["heartbeats_per_min"] > recs[-1]["heartbeats_per_min"]


# -- scalability --------------------------------------------------------------------

@pytest.fixture(scope="module")
def scalability_records():
    return run_scalability(scales=(1_000, 10_000, 100_000), seed=0)


def test_scalability_wakeup_independent_of_fleet(scalability_records):
    ws = [r["wakeup_mean_s"] for r in scalability_records]
    assert max(ws) - min(ws) < 0.05 * max(ws)


def test_scalability_efficiency_stable(scalability_records):
    es = [r["efficiency"] for r in scalability_records]
    assert max(es) - min(es) < 0.15


def test_scalability_render(scalability_records):
    out = render_scalability(scalability_records)
    assert "Scalability" in out
    assert "requirement I" in out
