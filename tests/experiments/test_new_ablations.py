"""Tests for the extension ablations A4 (aggregation) and A5
(tail replication)."""

import pytest

from repro.experiments import (
    run_aggregation_ablation,
    run_replication_ablation,
)


@pytest.fixture(scope="module")
def aggregation_records():
    return run_aggregation_ablation(
        n_pnas=12, heartbeat_s=5.0, aggregation_s=20.0,
        fanouts=(0, 2, 4), horizon_s=300.0, seed=0)


def test_aggregation_reduces_controller_messages(aggregation_records):
    baseline = next(r for r in aggregation_records if r["aggregators"] == 0)
    for r in aggregation_records:
        if r["aggregators"] > 0:
            assert r["controller_msgs"] * 5 < baseline["controller_msgs"]


def test_aggregation_preserves_idle_census(aggregation_records):
    assert all(r["census_correct"] for r in aggregation_records)


def test_more_aggregators_more_digests(aggregation_records):
    with_agg = [r for r in aggregation_records if r["aggregators"] > 0]
    msgs = [r["controller_msgs"] for r in
            sorted(with_agg, key=lambda r: r["aggregators"])]
    assert msgs == sorted(msgs)  # linear in fan-out, period fixed


@pytest.fixture(scope="module")
def replication_records():
    return run_replication_ablation(seed=0)


def test_replication_cuts_straggler_makespan(replication_records):
    base = next(r for r in replication_records if not r["replicate_tail"])
    repl = next(r for r in replication_records if r["replicate_tail"])
    assert repl["makespan_s"] < base["makespan_s"]
    assert repl["speedup_vs_base"] > 1.5
    assert repl["replicas_issued"] >= 1
    assert base["replicas_issued"] == 0


@pytest.fixture(scope="module")
def plane_records():
    from repro.experiments import run_plane_comparison

    return run_plane_comparison(image_mbs=(1.0, 4.0), n_nodes=4, seed=0)


def test_plane_comparison_generic_is_one_shot(plane_records):
    """Generic plane: the image rides one broadcast message, so the
    fleet is staged in ~I/beta (simultaneously), below 1.5 I/beta."""
    for r in plane_records:
        assert r["generic_plane_s"] < r["w_model_s"]


def test_plane_comparison_carousel_close_for_aligned_listeners(
        plane_records):
    """Xlets already polling the config file are phase-aligned to the
    cycle, so they stage faster than the uniform-phase 1.5 I/beta
    average — a nuance the analytic model's steady-state assumption
    hides."""
    for r in plane_records:
        assert r["carousel_plane_s"] < 1.5 * r["w_model_s"]
        assert r["carousel_penalty"] < 1.6


def test_plane_comparison_scales_with_image(plane_records):
    small, large = plane_records
    assert large["generic_plane_s"] > small["generic_plane_s"]
    assert large["carousel_plane_s"] > small["carousel_plane_s"]
