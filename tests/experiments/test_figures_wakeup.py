"""Tests for the wakeup sweep and Figure 6/7 drivers."""

import numpy as np
import pytest

from repro.analysis import wakeup_time
from repro.experiments import (
    event_tier_wakeup_mean,
    render_fig6,
    render_fig7,
    render_wakeup,
    run_fig6,
    run_fig7,
    run_wakeup_sweep,
)
from repro.experiments.fig6 import PHI_GRID, RATIOS
from repro.net.message import MEGABYTE


# -- wakeup ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def wakeup_records():
    return run_wakeup_sweep(vector_nodes=20_000, event_readers=25, seed=0)


def test_wakeup_sweep_covers_grid(wakeup_records):
    assert len(wakeup_records) == 6 * 3  # 6 image sizes x 3 betas


def test_wakeup_vector_close_to_analytic(wakeup_records):
    for r in wakeup_records:
        # DSM-CC + Xlet overheads inflate W slightly above 1.5 I/beta.
        assert r["analytic_s"] <= r["vector_s"] < 1.35 * r["analytic_s"]


def test_wakeup_event_close_to_vector(wakeup_records):
    for r in wakeup_records:
        assert r["event_s"] == pytest.approx(r["vector_s"], rel=0.2)


def test_wakeup_scales_with_I_and_inverse_beta(wakeup_records):
    by_key = {(r["beta_mbps"], r["image_mb"]): r["vector_s"]
              for r in wakeup_records}
    assert by_key[(1.0, 16)] > by_key[(1.0, 8)] > by_key[(1.0, 1)]
    assert by_key[(19.0, 8)] < by_key[(5.0, 8)] < by_key[(1.0, 8)]


def test_wakeup_paper_headline_number(wakeup_records):
    """8 MB @ 1 Mbps -> ~100 s ('less than a few minutes' at millions
    of nodes)."""
    r = next(x for x in wakeup_records
             if x["image_mb"] == 8 and x["beta_mbps"] == 1.0)
    assert 90 < r["vector_s"] < 140
    assert r["analytic_s"] == pytest.approx(
        wakeup_time(8 * MEGABYTE, 1e6))


def test_event_tier_wakeup_standalone():
    w = event_tier_wakeup_mean(1 * MEGABYTE, 1e6, n_readers=20, seed=1)
    assert w == pytest.approx(1.5 * MEGABYTE / 1e6, rel=0.25)


def test_render_wakeup(wakeup_records):
    out = render_wakeup(wakeup_records)
    assert "wakeup overhead" in out
    assert "8 MB @ 1 Mbps" in out


# -- Figure 6 -------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig6_records():
    return run_fig6(sim_nodes=100, sim_ratios=(10,), seed=0)


def test_fig6_grid_coverage(fig6_records):
    assert len(fig6_records) == len(PHI_GRID) * len(RATIOS)


def test_fig6_efficiency_monotone_in_phi(fig6_records):
    for ratio in RATIOS:
        es = [r["efficiency_analytic"] for r in fig6_records
              if r["ratio"] == ratio]
        assert es == sorted(es)


def test_fig6_efficiency_monotone_in_ratio(fig6_records):
    for phi in PHI_GRID:
        es = [r["efficiency_analytic"] for r in fig6_records
              if r["phi"] == phi]
        assert es == sorted(es)


def test_fig6_ratio_100_reaches_high_efficiency(fig6_records):
    """Paper: 'a ratio above 100 is generally enough to yield very high
    efficiency for most practical applications'."""
    high_phi = [r for r in fig6_records
                if r["ratio"] >= 100 and r["phi"] >= 1000]
    assert all(r["efficiency_analytic"] > 0.9 for r in high_phi)


def test_fig6_simulation_tracks_analytic(fig6_records):
    for r in fig6_records:
        if "efficiency_sim" not in r:
            continue
        # Recruitment is binomial (fleet size varies around the target)
        # and the carousel adds overheads, so allow a modest band.
        assert r["efficiency_sim"] == pytest.approx(
            r["efficiency_analytic"], abs=0.12)


def test_fig6_render(fig6_records):
    out = render_fig6(fig6_records)
    assert "Figure 6" in out
    assert "n/N=1000" in out
    assert "cross-check" in out


# -- Figure 7 ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig7_records():
    return run_fig7(sim_nodes=100, sim_ratios=(10,), seed=0)


def test_fig7_makespan_monotone_in_phi(fig7_records):
    for ratio in RATIOS:
        ms = [r["makespan_analytic_s"] for r in fig7_records
              if r["ratio"] == ratio]
        assert ms == sorted(ms)


def test_fig7_efficiency_penalises_makespan(fig6_records, fig7_records):
    """The Section 5.2.2 trade-off: the (ratio, phi) points with the
    highest efficiency have the longest makespans."""
    best_eff = max(fig6_records, key=lambda r: r["efficiency_analytic"])
    matching = next(r for r in fig7_records
                    if r["ratio"] == best_eff["ratio"]
                    and r["phi"] == best_eff["phi"])
    all_ms = [r["makespan_analytic_s"] for r in fig7_records]
    assert matching["makespan_analytic_s"] == max(all_ms)


def test_fig7_simulation_tracks_analytic(fig7_records):
    for r in fig7_records:
        if "makespan_sim_s" not in r:
            continue
        assert r["makespan_sim_s"] == pytest.approx(
            r["makespan_analytic_s"], rel=0.45)


def test_fig7_render(fig7_records):
    out = render_fig7(fig7_records)
    assert "Figure 7" in out
    assert "log-y" in out
