"""Tier-2 sweep: every registered scenario through the parallel runner.

Each scenario runs at smoke scale with ``jobs=2`` and must (a) write
all three artifact files and (b) produce records byte-identical to a
serial run.  Opt in with ``pytest --run-experiments`` or
``make experiments`` — this is minutes of work, kept out of tier 1.
"""

import json

import pytest

from repro.runner import ArtifactStore, Runner, scenario_ids


@pytest.mark.experiments
@pytest.mark.parametrize("name", scenario_ids())
def test_scenario_smoke_parallel_parity(tmp_path, name):
    serial = Runner(jobs=1, seed=0, smoke=True,
                    store=ArtifactStore(tmp_path / "serial")).run(name)
    parallel = Runner(jobs=2, seed=0, smoke=True,
                      store=ArtifactStore(tmp_path / "par")).run(name)
    assert serial.records == parallel.records
    assert serial.rendered == parallel.rendered

    for root, result in ((tmp_path / "serial", serial),
                         (tmp_path / "par", parallel)):
        directory = root / name
        records = json.loads(
            (directory / "records-smoke.json").read_text())
        assert records and isinstance(records, list)
        assert (directory / "rendered-smoke.txt").read_text().strip()
        meta = json.loads(
            (directory / f"run-smoke-jobs{result.jobs}.json").read_text())
        assert meta["scenario"] == name
        assert meta["wall_time_s"] >= 0
