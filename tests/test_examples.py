"""Smoke tests: the example scripts run end to end and print sane output.

``national_broadcast.py`` is exercised by the vector-tier tests instead
(it takes ~a minute at full scale).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "blast_screening.py",
            "infrastructure_comparison.py", "elastic_instances.py",
            "national_broadcast.py"} <= names


def test_quickstart_runs_and_matches_model():
    out = run_example("quickstart.py")
    assert "makespan (measured)" in out
    assert "efficiency (Eq. 2)" in out


def test_infrastructure_comparison_runs():
    out = run_example("infrastructure_comparison.py")
    assert "meets ALL requirements" in out
    assert "oddci" in out


def test_blast_screening_runs():
    out = run_example("blast_screening.py")
    assert "speedup vs single STB" in out
    assert "receivers online: 12 / 12" in out


def test_elastic_instances_runs():
    out = run_example("elastic_instances.py")
    assert "after recomposition" in out
    assert "after dismantle" in out
