"""CertifyPolicy: validation and replication selection."""

import pytest

from repro.certify import CertifyPolicy, MODES
from repro.errors import ConfigurationError


def test_modes_cover_the_three_policies():
    assert MODES == ("audit", "static", "adaptive")


def test_defaults_are_static_r3():
    pol = CertifyPolicy()
    assert pol.mode == "static"
    assert pol.r == 3
    assert not pol.audits_only


@pytest.mark.parametrize("kwargs", [
    {"mode": "bogus"},
    {"r": 0},
    {"r_min": 0},
    {"r_max": 0},
    {"r_min": 3, "r_max": 2},
    {"probe_rate": -0.1},
    {"probe_rate": 1.5},
    {"probe_ref_seconds": 0.0},
    {"trust_threshold": 1.5},
    {"initial_credibility": -0.1},
    {"penalty": 1.0},
    {"quarantine_after": -1},
])
def test_bad_parameters_raise(kwargs):
    with pytest.raises(ConfigurationError):
        CertifyPolicy(**kwargs)


def test_audit_mode_never_replicates():
    pol = CertifyPolicy(mode="audit")
    assert pol.audits_only
    assert pol.replication_for(0.0) == 1
    assert pol.replication_for(1.0) == 1


def test_static_mode_replicates_regardless_of_credibility():
    pol = CertifyPolicy(mode="static", r=4)
    assert pol.replication_for(0.0) == 4
    assert pol.replication_for(1.0) == 4


def test_adaptive_mode_decays_on_trust():
    pol = CertifyPolicy(mode="adaptive", r_min=1, r_max=3,
                        trust_threshold=0.9)
    assert pol.replication_for(0.5) == 3
    assert pol.replication_for(0.89) == 3
    assert pol.replication_for(0.9) == 1
    assert pol.replication_for(1.0) == 1


def test_quorum_is_strict_majority():
    assert CertifyPolicy.quorum(1) == 1
    assert CertifyPolicy.quorum(2) == 2
    assert CertifyPolicy.quorum(3) == 2
    assert CertifyPolicy.quorum(4) == 3
    assert CertifyPolicy.quorum(5) == 3
