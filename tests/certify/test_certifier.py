"""ResultCertifier: quorum voting, probes, quarantine — driven directly.

These tests build a standalone Backend (no Controller, no PNAs) and
drive the certifier's ``serve``/``on_result`` surface by hand, so each
certification rule is pinned without simulator scheduling noise.
"""

import pytest

from repro.certify import CertifyPolicy, ProbeTask
from repro.core.backend import Backend
from repro.core.messages import NoWork
from repro.core.network import Router
from repro.errors import BackendError, QuarantinedNodeError
from repro.sim.core import Simulator
from repro.workloads import uniform_bag


def make_backend(policy, n_tasks=6, **kwargs):
    sim = Simulator(seed=7)
    job = uniform_bag(n_tasks, image_bits=1e6, ref_seconds=10.0,
                      name="certify-test")
    backend = Backend(sim, job, Router(sim), backend_id="backend-cert",
                      certify_policy=policy, **kwargs)
    return backend


def test_certify_policy_and_replicate_tail_are_exclusive():
    sim = Simulator(seed=7)
    job = uniform_bag(4, image_bits=1e6, ref_seconds=10.0, name="x")
    with pytest.raises(BackendError):
        Backend(sim, job, Router(sim), backend_id="b",
                certify_policy=CertifyPolicy(), replicate_tail=True)


def test_redundant_dispatch_pins_distinct_pnas():
    backend = make_backend(CertifyPolicy(mode="static", r=3), n_tasks=1)
    certifier = backend.certifier
    t0 = certifier.serve("pna-a", "inst")
    assert t0.task_id == 0
    # The same node never gets a second copy of a task it holds.
    again = certifier.serve("pna-a", "inst")
    assert isinstance(again, NoWork)
    t1 = certifier.serve("pna-b", "inst")
    t2 = certifier.serve("pna-c", "inst")
    assert t1.task_id == t2.task_id == 0
    assert certifier.copies_issued == 3
    assert backend.tasks_assigned == 1      # one primary...
    assert backend.replicas_issued == 2     # ...two copies


def test_honest_quorum_commits_without_waiting_for_all_votes():
    backend = make_backend(CertifyPolicy(mode="static", r=3), n_tasks=1)
    certifier = backend.certifier
    for pna in ("a", "b", "c"):
        certifier.serve(pna, "inst")
    certifier.on_result("a", 0, None)
    assert certifier.outstanding == 1       # one vote is not a quorum
    certifier.on_result("b", 0, None)       # 2/3 agree: commit now
    assert certifier.outstanding == 0
    assert certifier.tasks_certified == 1
    assert certifier.escaped_errors == 0
    assert 0 in backend._completed
    # The straggling third vote is a duplicate, not a new round.
    certifier.on_result("c", 0, None)
    assert backend.duplicates == 1


def test_lone_saboteur_is_outvoted_and_punished():
    # Saboteur votes first; the two honest replicas still win.
    backend = make_backend(CertifyPolicy(mode="static", r=3,
                                         quarantine_after=0), n_tasks=1)
    certifier = backend.certifier
    for pna in ("evil", "b", "c"):
        certifier.serve(pna, "inst")
    certifier.on_result("evil", 0, -131072)
    certifier.on_result("b", 0, None)
    certifier.on_result("c", 0, None)
    assert certifier.tasks_certified == 1
    assert certifier.escaped_errors == 0
    cred = certifier.ledger
    assert cred.bad_count("evil") == 1
    assert cred.credibility("evil") < cred.credibility("b")


def test_colluding_majority_escapes_and_audit_counts_it():
    backend = make_backend(CertifyPolicy(mode="static", r=3), n_tasks=1)
    certifier = backend.certifier
    for pna in ("evil1", "evil2", "honest"):
        certifier.serve(pna, "inst")
    certifier.on_result("evil1", 0, -555)
    certifier.on_result("evil2", 0, -555)   # colluding quorum
    assert certifier.tasks_certified == 1
    assert certifier.escaped_errors == 1    # ground-truth audit caught it
    assert 0 in backend._completed


def test_no_quorum_rejects_round_and_redispatches():
    backend = make_backend(CertifyPolicy(mode="static", r=3,
                                         quarantine_after=0), n_tasks=1)
    certifier = backend.certifier
    for pna in ("a", "b", "c"):
        certifier.serve(pna, "inst")
    # Three-way disagreement: no digest reaches the quorum of 2.
    certifier.on_result("a", 0, -101)
    certifier.on_result("b", 0, -202)
    certifier.on_result("c", 0, -303)
    assert certifier.votes_rejected == 3
    assert certifier.tasks_certified == 0
    assert backend.requeues == 1
    assert backend._attempts[0] == 1        # backoff sees the retry
    # The task is re-dispatchable, including to previous voters.
    t = certifier.serve("d", "inst")
    assert t.task_id == 0


def test_audit_mode_commits_first_vote_and_scores_escapes():
    backend = make_backend(CertifyPolicy(mode="audit"), n_tasks=2)
    certifier = backend.certifier
    t0 = certifier.serve("good", "inst")
    certifier.on_result("good", t0.task_id, None)
    t1 = certifier.serve("evil", "inst")
    certifier.on_result("evil", t1.task_id, -777)
    assert certifier.tasks_certified == 2
    assert certifier.escaped_errors == 1
    assert certifier.quarantines == 0       # audit mode never convicts
    assert backend.done


def test_probe_failure_quarantines_after_threshold():
    calls = []
    backend = make_backend(CertifyPolicy(mode="static", r=3,
                                         probe_rate=0.5,
                                         quarantine_after=2))
    certifier = backend.certifier
    certifier.on_quarantine = lambda pna, reason: calls.append(pna)
    # Issue probes directly (the serve-time draw is rng-gated).
    probe = certifier._make_probe("evil")
    assert isinstance(probe, ProbeTask)
    assert probe.task_id < 0
    certifier.on_result("evil", probe.task_id, -999)
    assert certifier.probes_failed == 1
    assert not certifier.is_quarantined("evil")
    probe2 = certifier._make_probe("evil")
    assert probe2.task_id == probe.task_id - 1   # fresh id per probe
    certifier.on_result("evil", probe2.task_id, -999)
    assert certifier.is_quarantined("evil")
    assert calls == ["evil"]
    with pytest.raises(QuarantinedNodeError):
        certifier.serve("evil", "inst")
    # Late results from a quarantined node are suppressed.
    certifier.on_result("evil", 0, None)
    assert certifier.tasks_certified == 0


def test_probe_pass_earns_credibility():
    backend = make_backend(CertifyPolicy(mode="static", r=3,
                                         probe_rate=0.5))
    certifier = backend.certifier
    probe = certifier._make_probe("good")
    certifier.on_result("good", probe.task_id, None)
    assert certifier.probes_failed == 0
    assert certifier.ledger.credibility("good") == 0.75


def test_quarantine_requeues_outstanding_copies():
    backend = make_backend(CertifyPolicy(mode="static", r=3), n_tasks=1)
    certifier = backend.certifier
    certifier.serve("evil", "inst")
    certifier.serve("b", "inst")
    certifier.quarantine("evil", "manual")
    # evil's copy went back in the queue; a new node can take it.
    t = certifier.serve("c", "inst")
    assert t.task_id == 0
    assert certifier.quarantines == 1


def test_adaptive_replication_shrinks_for_trusted_nodes():
    pol = CertifyPolicy(mode="adaptive", r_min=1, r_max=3,
                        trust_threshold=0.9)
    backend = make_backend(pol, n_tasks=4)
    certifier = backend.certifier
    # First contact: full redundancy.
    t0 = certifier.serve("a", "inst")
    assert certifier._records[t0.task_id].r == 3
    # Promote node a past the trust threshold.
    for _ in range(5):
        certifier.ledger.record_good("a")
    assert certifier.ledger.credibility("a") >= 0.9
    # a's own fresh dispatch now goes out unreplicated...
    t1 = certifier.serve("a", "inst")
    assert certifier._records[t1.task_id].r == 1
    # ...and commits on a's single vote.
    certifier.on_result("a", t1.task_id, None)
    assert t1.task_id in backend._completed


def test_lease_expiry_requeues_and_decays_without_conviction():
    pol = CertifyPolicy(mode="static", r=3)
    backend = make_backend(pol, n_tasks=1, lease_factor=2.0)
    certifier = backend.certifier
    certifier.serve("a", "inst")
    before = certifier.ledger.credibility("a")
    certifier.expire_leases(now=1e9)        # far future: lease long gone
    assert backend.requeues == 1
    assert certifier.ledger.credibility("a") < before
    assert certifier.ledger.bad_count("a") == 0   # timeouts never convict
    # The expired copy is available again, to a different node.
    t = certifier.serve("b", "inst")
    assert t.task_id == 0
