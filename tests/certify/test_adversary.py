"""Adversary behaviour profiles: digests, timing, collusion."""

import pytest

from repro.certify import ADVERSARY_KINDS, Adversary, FREE_RIDER_SECONDS
from repro.errors import FaultPlanError


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError):
        Adversary("vandal", "pna-1")


def test_bad_slowdown_rejected():
    with pytest.raises(FaultPlanError):
        Adversary("straggler", "pna-1", slowdown=0.0)


def test_saboteur_fabricates_deterministic_negative_digests():
    adv = Adversary("saboteur", "pna-3")
    d = adv.digest(7)
    assert d is not None and d < 0
    assert adv.digest(7) == d          # deterministic per task
    assert adv.digest(8) != d          # distinct per task
    assert adv.compute_seconds(12.0) == 12.0  # honest timing


def test_saboteurs_disagree_unless_colluding():
    a = Adversary("saboteur", "pna-1")
    b = Adversary("saboteur", "pna-2")
    assert a.digest(5) != b.digest(5)
    ca = Adversary("saboteur", "pna-1", collude=True)
    cb = Adversary("saboteur", "pna-2", collude=True)
    assert ca.digest(5) == cb.digest(5)


def test_salt_is_stable_across_instances():
    # crc32, not randomized str hash: two processes agree.
    assert (Adversary("saboteur", "pna-1").salt
            == Adversary("saboteur", "pna-1").salt)


def test_free_rider_skips_the_work():
    adv = Adversary("free_rider", "pna-4")
    assert adv.compute_seconds(120.0) == FREE_RIDER_SECONDS
    assert adv.digest(3) < 0


def test_straggler_is_slow_but_honest():
    adv = Adversary("straggler", "pna-5", slowdown=10.0)
    assert adv.compute_seconds(4.0) == 40.0
    assert adv.digest(3) is None


def test_every_kind_constructible():
    for kind in ADVERSARY_KINDS:
        Adversary(kind, "pna-0")
