"""CredibilityLedger: the per-node trust arithmetic."""

from repro.certify import CredibilityLedger


def test_unknown_node_has_initial_credibility():
    ledger = CredibilityLedger(initial=0.5)
    assert ledger.credibility("pna-9") == 0.5
    assert ledger.bad_count("pna-9") == 0


def test_good_outcomes_halve_the_distance_to_one():
    ledger = CredibilityLedger(initial=0.5)
    assert ledger.record_good("a") == 0.75
    assert ledger.record_good("a") == 0.875
    assert ledger.record_good("a") == 0.9375
    assert ledger.credibility("a") == 0.9375


def test_bad_outcomes_multiply_down_and_count():
    ledger = CredibilityLedger(initial=0.5, penalty=0.25)
    assert ledger.record_bad("a") == 1
    assert ledger.credibility("a") == 0.125
    assert ledger.record_bad("a") == 2
    assert ledger.credibility("a") == 0.03125
    assert ledger.bad_count("a") == 2


def test_timeouts_decay_mildly_without_bad_count():
    ledger = CredibilityLedger(initial=0.5)
    ledger.record_timeout("a")
    assert ledger.credibility("a") == 0.45
    assert ledger.bad_count("a") == 0


def test_redemption_is_possible_but_slow():
    # A punished node can climb back above its starting point.
    ledger = CredibilityLedger(initial=0.5, penalty=0.25)
    ledger.record_bad("a")
    for _ in range(4):
        ledger.record_good("a")
    assert ledger.credibility("a") > 0.5
    assert ledger.bad_count("a") == 1  # the record never forgets


def test_known_nodes_sorted_and_snapshot():
    ledger = CredibilityLedger(initial=0.5)
    ledger.record_good("b")
    ledger.record_bad("a")
    assert ledger.known_nodes() == ["a", "b"]
    snap = {pna: (cred, bad) for pna, cred, bad in ledger.snapshot()}
    assert set(snap) == {"a", "b"}
    assert snap["b"] == (0.75, 0)
    assert snap["a"][1] == 1
