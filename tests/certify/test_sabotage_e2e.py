"""End-to-end sabotage runs: certification holds on both task paths.

These drive the full stack — injector-flipped saboteurs, redundant
dispatch, quorum voting, quarantine feeding the Controller blacklist —
and pin that the cohort engine and the per-PNA process path agree
byte-for-byte on every reported number.
"""

from repro.core.system import OddCISystem
from repro.experiments import CERTIFY_POLICIES, sabotage_plan
from repro.faults import active_plan
from repro.net.message import MEGABYTE
from repro.workloads import uniform_bag
from repro.workloads.job import reset_job_sequence


def run_point(task_path, policy="quorum3", fraction=0.3, seed=0):
    # Fresh job numbering: backend ids (and thus certifier rng streams)
    # must not depend on how many runs this process did before.
    reset_job_sequence()
    plan = sabotage_plan(fraction)
    with active_plan(plan if plan.events else None):
        system = OddCISystem(seed=seed, maintenance_interval_s=30.0,
                             task_path=task_path)
        system.add_pnas(8, heartbeat_interval_s=15.0,
                        dve_poll_interval_s=5.0)
        job = uniform_bag(30, image_bits=MEGABYTE, ref_seconds=10.0,
                          name="sabotage-e2e")
        submission = system.provider.submit_job(
            job, target_size=5, heartbeat_interval_s=15.0,
            lease_factor=3.0, lease_backoff_base=1.5,
            lease_backoff_jitter=0.2,
            certify_policy=CERTIFY_POLICIES[policy],
            release_on_completion=False)
        report = system.provider.run_job_to_completion(
            submission, limit_s=1e7)
    certifier = submission.backend.certifier
    return {
        "makespan_s": report.makespan,
        "done": submission.backend.done,
        "certified": certifier.tasks_certified,
        "escaped": certifier.escaped_errors,
        "copies_issued": certifier.copies_issued,
        "votes_rejected": certifier.votes_rejected,
        "probes_issued": certifier.probes_issued,
        "probes_failed": certifier.probes_failed,
        "quarantines": certifier.quarantines,
        "blacklisted": tuple(sorted(system.controller.blacklist)),
        "requeues": submission.backend.requeues,
    }


def test_quorum_blocks_every_byzantine_result_end_to_end():
    out = run_point("cohort", policy="quorum3", fraction=0.3)
    assert out["done"]
    assert out["certified"] == 30
    assert out["escaped"] == 0
    # Saboteurs were outvoted (rejected votes) and/or convicted.
    assert out["votes_rejected"] > 0 or out["quarantines"] > 0
    # Quarantines propagate into the Controller blacklist.
    assert len(out["blacklisted"]) == out["quarantines"]


def test_uncertified_baseline_leaks_fabricated_results():
    out = run_point("cohort", policy="none", fraction=0.3)
    assert out["done"]
    assert out["escaped"] > 0          # the headline the sweep measures
    assert out["quarantines"] == 0     # audit mode never convicts


def test_adaptive_policy_spends_fewer_copies_than_static():
    static = run_point("cohort", policy="quorum3", fraction=0.0)
    adaptive = run_point("cohort", policy="adaptive", fraction=0.0)
    assert static["escaped"] == adaptive["escaped"] == 0
    assert adaptive["copies_issued"] < static["copies_issued"]


def test_task_paths_agree_byte_for_byte():
    for policy in ("none", "quorum3", "adaptive"):
        cohort = run_point("cohort", policy=policy)
        process = run_point("process", policy=policy)
        assert cohort == process, policy


def test_runs_are_seed_deterministic():
    assert run_point("cohort") == run_point("cohort")
    assert run_point("cohort", seed=1)["done"]
