"""Unit tests for the transport multiplex and services."""

import pytest

from repro.carousel import CarouselFile
from repro.dtv import (
    AITEntry,
    ApplicationControlCode,
    ApplicationInformationTable,
    Multiplex,
)
from repro.errors import ConfigurationError, DTVError, TuningError
from repro.net import mbps
from repro.sim import Simulator


def make_mux(total=mbps(19)):
    sim = Simulator(seed=0)
    return sim, Multiplex(sim, total_rate_bps=total)


def test_add_service_within_capacity():
    sim, mux = make_mux()
    svc = mux.add_service("tv1", av_rate_bps=mbps(10), data_rate_bps=mbps(1))
    assert svc.total_rate_bps == mbps(11)
    assert mux.allocated_rate_bps == mbps(11)
    assert mux.service(svc.service_id) is svc


def test_over_capacity_rejected():
    sim, mux = make_mux(total=mbps(5))
    mux.add_service("a", av_rate_bps=mbps(3), data_rate_bps=mbps(1))
    with pytest.raises(ConfigurationError):
        mux.add_service("b", av_rate_bps=mbps(1), data_rate_bps=mbps(0.5))


def test_unknown_service_raises():
    sim, mux = make_mux()
    with pytest.raises(TuningError):
        mux.service(42)


def test_service_validation():
    sim, mux = make_mux()
    with pytest.raises(ConfigurationError):
        mux.add_service("bad", av_rate_bps=mbps(1), data_rate_bps=0)


def test_mux_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Multiplex(sim, total_rate_bps=0)


def test_mount_carousel_once():
    sim, mux = make_mux()
    svc = mux.add_service("tv", av_rate_bps=mbps(10), data_rate_bps=mbps(1))
    files = [CarouselFile(name="image", size_bits=1e6)]
    carousel = svc.mount_carousel(files)
    assert svc.carousel is carousel
    with pytest.raises(DTVError):
        svc.mount_carousel(files)
    svc.unmount_carousel()
    assert svc.carousel is None
    with pytest.raises(DTVError):
        svc.unmount_carousel()


def test_ait_publish_and_attach_semantics():
    sim, mux = make_mux()
    svc = mux.add_service("tv", av_rate_bps=mbps(10), data_rate_bps=mbps(1))
    snapshots = []
    token = svc.attach(snapshots.append)
    # attach delivers the current (empty) AIT immediately
    assert len(snapshots) == 1 and snapshots[0].entries == ()

    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    assert len(snapshots) == 2
    assert svc.ait.table_version == 2
    assert svc.tuned_count == 1

    svc.detach(token)
    svc.publish_ait(ait.with_entry(AITEntry(
        app_id=2, name="x", control_code=ApplicationControlCode.PRESENT,
        carousel_path="x.bin")))
    assert len(snapshots) == 2  # detached: no more deliveries


def test_ait_version_must_advance():
    sim, mux = make_mux()
    svc = mux.add_service("tv", av_rate_bps=mbps(10), data_rate_bps=mbps(1))
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    with pytest.raises(DTVError):
        svc.publish_ait(ait)  # same version again
