"""Integration tests: STB + middleware + carousel-delivered Xlets."""

import pytest

from repro.carousel import CarouselFile
from repro.dtv import (
    AITEntry,
    ApplicationControlCode,
    ApplicationInformationTable,
    Multiplex,
    SetTopBox,
    Xlet,
    XletState,
)
from repro.errors import ConfigurationError, TuningError
from repro.net import DuplexChannel, kbps, mbps
from repro.sim import Simulator
from repro.workloads.devices import (
    REFERENCE_PC,
    REFERENCE_STB,
    PowerMode,
    STB_IN_USE_OVER_PC,
    STB_IN_USE_OVER_STANDBY,
)


class CountingXlet(Xlet):
    instances = []

    def __init__(self, sim, stb):
        super().__init__(sim, name=f"counting@{stb.stb_id}")
        CountingXlet.instances.append(self)


def xlet_factory(sim, stb):
    return CountingXlet(sim, stb)


def build_world(beta=mbps(1)):
    CountingXlet.instances = []
    sim = Simulator(seed=1)
    mux = Multiplex(sim, total_rate_bps=mbps(19))
    svc = mux.add_service("tv", av_rate_bps=mbps(10), data_rate_bps=beta)
    svc.mount_carousel([
        CarouselFile(name="pna.bin", size_bits=1e6,
                     metadata={"xlet_factory": xlet_factory}),
    ])
    return sim, svc


def make_stb(sim, svc, mode=PowerMode.IN_USE):
    ch = DuplexChannel(sim, rate_bps=kbps(150), name="stb.direct")
    stb = SetTopBox(sim, "stb-0", direct_channel=ch, mode=mode)
    stb.tune(svc)
    return stb


def test_autostart_app_launches_after_carousel_read():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    assert stb.app_manager.running_count == 0  # load in flight
    sim.run(until=30.0)
    assert stb.app_manager.running_count == 1
    xlet = stb.app_manager.running_xlet(1)
    assert xlet.state is XletState.STARTED
    assert stb.app_manager.apps_launched == 1
    # Launch took at least the carousel read time (image 1 Mbit @ 1 Mbps).
    svc.carousel.stop()


def test_non_autostart_entry_not_launched():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    svc.publish_ait(ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.PRESENT,
        carousel_path="pna.bin")))
    sim.run(until=30.0)
    assert stb.app_manager.running_count == 0
    svc.carousel.stop()


def test_destroy_code_kills_running_app():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    sim.run(until=30.0)
    xlet = stb.app_manager.running_xlet(1)
    svc.publish_ait(ait.with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.KILL,
        carousel_path="pna.bin", version=2)))
    sim.run(until=60.0)
    assert stb.app_manager.running_count == 0
    assert xlet.destroyed
    svc.carousel.stop()


def test_app_removed_from_ait_is_killed():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    sim.run(until=30.0)
    svc.publish_ait(ait.without_app(1))
    assert stb.app_manager.running_count == 0
    svc.carousel.stop()


def test_same_version_not_relaunched():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    sim.run(until=30.0)
    # Republishing the same entry (new table, same entry version): no-op.
    svc.publish_ait(ApplicationInformationTable(
        entries=ait.entries, table_version=ait.table_version + 1))
    sim.run(until=60.0)
    assert stb.app_manager.apps_launched == 1
    svc.carousel.stop()


def test_new_entry_version_replaces_running_app():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    ait = ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin"))
    svc.publish_ait(ait)
    sim.run(until=30.0)
    old = stb.app_manager.running_xlet(1)
    svc.publish_ait(ait.with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin", version=2)))
    sim.run(until=60.0)
    new = stb.app_manager.running_xlet(1)
    assert old.destroyed and new is not old
    assert new.state is XletState.STARTED
    assert stb.app_manager.apps_launched == 2
    svc.carousel.stop()


def test_power_off_kills_apps_and_downs_channel():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    svc.publish_ait(ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin")))
    sim.run(until=30.0)
    assert stb.app_manager.running_count == 1
    stb.set_mode(PowerMode.OFF)
    assert stb.app_manager.running_count == 0
    assert not stb.direct_channel.up
    assert stb.tuned_carousel() is None
    svc.carousel.stop()


def test_power_cycle_relaunches_autostart_app():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    svc.publish_ait(ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin")))
    sim.run(until=30.0)
    stb.set_mode(PowerMode.OFF)
    stb.set_mode(PowerMode.IN_USE)  # tuner remembers the service
    sim.run(until=90.0)
    assert stb.app_manager.running_count == 1
    assert stb.app_manager.apps_launched == 2
    svc.carousel.stop()


def test_off_receiver_misses_ait():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    stb.set_mode(PowerMode.OFF)
    svc.publish_ait(ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin")))
    sim.run(until=30.0)
    assert stb.app_manager.running_count == 0
    svc.carousel.stop()


def test_cannot_tune_while_off():
    sim, svc = build_world()
    ch = DuplexChannel(sim, rate_bps=kbps(150))
    stb = SetTopBox(sim, "s", direct_channel=ch, mode=PowerMode.OFF)
    with pytest.raises(TuningError):
        stb.tune(svc)
    svc.carousel.stop()


def test_compute_times_match_device_calibration():
    sim, svc = build_world()
    stb = make_stb(sim, svc, mode=PowerMode.IN_USE)
    ref = 10.0  # seconds on the reference PC
    in_use = stb.execution_time(ref)
    stb.set_mode(PowerMode.STANDBY)
    standby = stb.execution_time(ref)
    assert in_use / ref == pytest.approx(STB_IN_USE_OVER_PC)
    assert in_use / standby == pytest.approx(STB_IN_USE_OVER_STANDBY)
    svc.carousel.stop()


def test_compute_while_off_rejected():
    sim = Simulator()
    stb = SetTopBox(sim, "s", mode=PowerMode.OFF)
    with pytest.raises(ConfigurationError):
        stb.execution_time(1.0)


def test_compute_event_duration():
    sim = Simulator()
    stb = SetTopBox(sim, "s", profile=REFERENCE_PC, mode=PowerMode.IN_USE)
    ev = stb.compute(5.0)
    sim.run_until_event(ev)
    assert sim.now == pytest.approx(5.0)


def test_retune_kills_apps():
    sim, svc = build_world()
    stb = make_stb(sim, svc)
    svc.publish_ait(ApplicationInformationTable().with_entry(AITEntry(
        app_id=1, name="pna", control_code=ApplicationControlCode.AUTOSTART,
        carousel_path="pna.bin")))
    sim.run(until=30.0)
    assert stb.app_manager.running_count == 1
    mux2 = Multiplex(sim, total_rate_bps=mbps(19))
    other = mux2.add_service("other", av_rate_bps=mbps(10),
                             data_rate_bps=mbps(1))
    stb.tune(other)
    assert stb.app_manager.running_count == 0
    assert stb.service is other
    svc.carousel.stop()
