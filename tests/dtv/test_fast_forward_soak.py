"""Soak test for carousel fast-forward as the DTV default.

``OddCIDTVSystem`` now mounts its carousel with ``fast_forward=True``.
That optimisation must be *invisible*: every simulation output — job
report, census, event-level counters, experiment records — has to be
bit-identical with the flag on and off.  These tests gate the default.
"""

from repro.carousel import ObjectCarousel
from repro.carousel.objects import CarouselFile
from repro.dtv_oddci import OddCIDTVSystem
from repro.experiments.ablations import run_plane_comparison
from repro.net.broadcast import BroadcastChannel
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.sim.core import Simulator
from repro.workloads import uniform_bag


def test_dtv_defaults_to_fast_forward():
    system = OddCIDTVSystem(beta_bps=1_000_000.0, seed=13,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    assert system.control_plane.carousel.fast_forward is True


def test_raw_carousel_still_defaults_off():
    # The low-level primitive keeps the conservative default; only the
    # DTV system (whose workloads are soak-tested here) opts in.
    sim = Simulator()
    channel = BroadcastChannel(sim, 1e6)
    carousel = ObjectCarousel(sim, channel,
                              [CarouselFile("f", size_bits=8e6)])
    assert carousel.fast_forward is False


def _run_dtv_job(fast_forward: bool):
    system = OddCIDTVSystem(beta_bps=4_000_000.0, seed=23,
                            maintenance_interval_s=100.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024),
                            carousel_fast_forward=fast_forward)
    system.add_receivers(3, heartbeat_interval_s=50.0,
                         dve_poll_interval_s=5.0)
    system.sim.run(until=10.0)
    job = uniform_bag(9, image_bits=MEGABYTE, ref_seconds=8.0,
                      name="soak-job")
    submission = system.provider.submit_job(job, target_size=3,
                                            heartbeat_interval_s=50.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    system.sim.run(until=system.sim.now + 60.0)
    outputs = {
        "makespan": report.makespan,
        "completed_at": report.completed_at,
        "tasks_assigned": report.tasks_assigned,
        "distinct_workers": report.distinct_workers,
        "online": system.online_count(),
        "cycles": system.control_plane.carousel.cycles_completed,
        "sim_now": system.sim.now,
    }
    return outputs, system.sim.events_executed


def test_dtv_job_outputs_bit_identical_with_and_without_fast_forward():
    # Only semantic outputs must match; the event count legitimately
    # differs (park/wake bookkeeping vs. idle-cycle transmissions —
    # the idle-fleet event saving is asserted in
    # tests/carousel/test_fast_forward.py).
    on, _events_on = _run_dtv_job(True)
    off, _events_off = _run_dtv_job(False)
    assert on == off  # exact float equality, field by field


def test_plane_comparison_records_bit_identical():
    kwargs = dict(seed=29, n_nodes=4, image_mbs=(1.0, 4.0))
    on = run_plane_comparison(fast_forward=True, **kwargs)
    off = run_plane_comparison(fast_forward=False, **kwargs)
    assert on == off
