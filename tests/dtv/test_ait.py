"""Unit tests for AIT signalling."""

import pytest

from repro.dtv import AITEntry, ApplicationControlCode, ApplicationInformationTable
from repro.errors import DTVError


def entry(app_id=1, code=ApplicationControlCode.AUTOSTART, version=1):
    return AITEntry(app_id=app_id, name=f"app{app_id}", control_code=code,
                    carousel_path=f"app{app_id}.bin", version=version)


def test_entry_validation():
    with pytest.raises(DTVError):
        AITEntry(app_id=-1, name="x", carousel_path="p",
                 control_code=ApplicationControlCode.PRESENT)
    with pytest.raises(DTVError):
        AITEntry(app_id=1, name="", carousel_path="p",
                 control_code=ApplicationControlCode.PRESENT)
    with pytest.raises(DTVError):
        AITEntry(app_id=1, name="x", carousel_path="",
                 control_code=ApplicationControlCode.PRESENT)
    with pytest.raises(DTVError):
        entry(version=0)


def test_table_rejects_duplicate_app_ids():
    with pytest.raises(DTVError):
        ApplicationInformationTable(entries=(entry(1), entry(1)))


def test_autostart_entries_filtered():
    ait = ApplicationInformationTable(entries=(
        entry(1, ApplicationControlCode.AUTOSTART),
        entry(2, ApplicationControlCode.PRESENT),
        entry(3, ApplicationControlCode.AUTOSTART),
    ))
    assert [e.app_id for e in ait.autostart_entries()] == [1, 3]


def test_entry_lookup():
    ait = ApplicationInformationTable(entries=(entry(5),))
    assert ait.entry(5).name == "app5"
    with pytest.raises(DTVError):
        ait.entry(6)


def test_with_entry_adds_and_replaces_bumping_version():
    ait = ApplicationInformationTable()
    assert ait.table_version == 1
    ait2 = ait.with_entry(entry(1))
    assert ait2.table_version == 2
    assert len(ait2.entries) == 1
    replacement = entry(1, ApplicationControlCode.KILL, version=2)
    ait3 = ait2.with_entry(replacement)
    assert ait3.table_version == 3
    assert len(ait3.entries) == 1
    assert ait3.entry(1).control_code is ApplicationControlCode.KILL


def test_without_app():
    ait = ApplicationInformationTable(entries=(entry(1), entry(2)))
    ait2 = ait.without_app(1)
    assert [e.app_id for e in ait2.entries] == [2]
    assert ait2.table_version == ait.table_version + 1
    with pytest.raises(DTVError):
        ait.without_app(99)


def test_original_table_unchanged_by_with_entry():
    ait = ApplicationInformationTable()
    ait.with_entry(entry(1))
    assert ait.entries == ()
