"""Tests for the event-tier receiver population and churn."""

import pytest

from repro.dtv import Multiplex, PopulationConfig, ReceiverPopulation
from repro.errors import ConfigurationError
from repro.net import mbps
from repro.sim import Simulator
from repro.workloads.devices import PowerMode
from repro.workloads.traces import ChurnModel


def build(n=20, **kwargs):
    sim = Simulator(seed=5)
    mux = Multiplex(sim, total_rate_bps=mbps(19))
    svc = mux.add_service("tv", av_rate_bps=mbps(10), data_rate_bps=mbps(1))
    config = PopulationConfig(n=n, **kwargs)
    pop = ReceiverPopulation(sim, config, service=svc)
    return sim, svc, pop


def test_population_size_and_tuning():
    sim, svc, pop = build(n=20)
    assert len(pop) == 20
    assert svc.tuned_count == 20
    assert pop.powered_count() == 20


def test_mode_distribution_respects_fraction():
    sim, _, pop = build(n=300, in_use_fraction=0.5)
    in_use = pop.count_in_mode(PowerMode.IN_USE)
    assert 100 < in_use < 200  # ~150 expected


def test_all_in_use_by_default():
    sim, _, pop = build(n=10)
    assert pop.count_in_mode(PowerMode.IN_USE) == 10


def test_each_box_has_direct_channel():
    sim, _, pop = build(n=5)
    ids = {b.direct_channel.uplink.name for b in pop}
    assert len(ids) == 5


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        PopulationConfig(n=0)
    with pytest.raises(ConfigurationError):
        PopulationConfig(n=1, delta_bps=0)
    with pytest.raises(ConfigurationError):
        PopulationConfig(n=1, in_use_fraction=1.5)
    with pytest.raises(ConfigurationError):
        PopulationConfig(n=1, delta_latency_s=-1)


def test_churn_toggles_receivers():
    churn = ChurnModel(mean_on_s=100.0, mean_off_s=100.0)
    sim, _, pop = build(n=50, churn=churn)
    sim.run(until=500.0)
    powered = pop.powered_count()
    # Steady-state availability 0.5: expect roughly half powered.
    assert 10 < powered < 40


def test_churned_off_receivers_lose_direct_channel():
    churn = ChurnModel(mean_on_s=10.0, mean_off_s=1e9,
                       initial_on_probability=1.0)
    sim, _, pop = build(n=10, churn=churn)
    sim.run(until=200.0)
    # Everyone churned off (off sessions astronomically long).
    assert pop.powered_count() == 0
    assert all(not b.direct_channel.up for b in pop)


def test_no_churn_population_is_stable():
    sim, _, pop = build(n=10)
    sim.run(until=1000.0)
    assert pop.powered_count() == 10
