"""Unit tests for the Xlet lifecycle state machine (paper Figure 4)."""

import pytest

from repro.dtv import Xlet, XletState
from repro.errors import XletStateError
from repro.sim import Simulator


class RecordingXlet(Xlet):
    """Xlet that records its hook invocations."""

    def __init__(self, sim):
        super().__init__(sim, name="recorder")
        self.calls = []

    def on_init(self):
        self.calls.append("init")

    def on_start(self):
        self.calls.append("start")

    def on_pause(self):
        self.calls.append("pause")

    def on_destroy(self, unconditional):
        self.calls.append(("destroy", unconditional))


def test_full_lifecycle():
    sim = Simulator()
    x = RecordingXlet(sim)
    assert x.state is XletState.LOADED
    x.init_xlet()
    assert x.state is XletState.PAUSED
    x.start_xlet()
    assert x.state is XletState.STARTED
    x.pause_xlet()
    assert x.state is XletState.PAUSED
    x.start_xlet()
    assert x.state is XletState.STARTED
    x.destroy_xlet()
    assert x.state is XletState.DESTROYED
    assert x.calls == ["init", "start", "pause", "start", ("destroy", True)]


def test_cannot_start_from_loaded():
    sim = Simulator()
    x = RecordingXlet(sim)
    with pytest.raises(XletStateError):
        x.start_xlet()


def test_cannot_init_twice():
    sim = Simulator()
    x = RecordingXlet(sim)
    x.init_xlet()
    with pytest.raises(XletStateError):
        x.init_xlet()


def test_cannot_pause_from_paused():
    sim = Simulator()
    x = RecordingXlet(sim)
    x.init_xlet()
    with pytest.raises(XletStateError):
        x.pause_xlet()


def test_destroy_from_any_live_state():
    sim = Simulator()
    for advance in (0, 1, 2):
        x = RecordingXlet(sim)
        if advance >= 1:
            x.init_xlet()
        if advance >= 2:
            x.start_xlet()
        x.destroy_xlet(unconditional=False)
        assert x.destroyed


def test_destroyed_is_final():
    sim = Simulator()
    x = RecordingXlet(sim)
    x.init_xlet()
    x.destroy_xlet()
    for method in (x.init_xlet, x.start_xlet, x.pause_xlet, x.destroy_xlet):
        with pytest.raises(XletStateError):
            method()


def test_init_context_merged():
    sim = Simulator()
    x = RecordingXlet(sim)
    x.init_xlet(context={"app_id": 7})
    assert x.context["app_id"] == 7
