"""Determinism golden test: same seeds => identical event traces.

The perf work (fast-path heap entries, timer wheels, batched
deliveries, payload-level sends) must never change *what* the simulator
does — two runs with the same seed have to execute the same callbacks
at the same instants in the same order, and produce identical semantic
outputs (makespan, census, counters).  This is the regression net under
every future kernel optimisation.
"""

from repro.core import OddCISystem, PNAState
from repro.workloads import uniform_bag


def _callback_name(cb) -> str:
    return getattr(cb, "__qualname__", None) or type(cb).__name__


def _run_full_cycle(seed: int, heartbeat_interval_s: float = 20.0,
                    task_path: str = "process"):
    """One wakeup+heartbeat+job cycle; returns (trace, outputs)."""
    trace = []
    system = OddCISystem(beta_bps=1_000_000.0, delta_bps=150_000.0,
                         maintenance_interval_s=30.0, seed=seed,
                         task_path=task_path)
    system.sim.trace = lambda t, cb, args: trace.append(
        (t, _callback_name(cb)))
    system.add_pnas(25, heartbeat_interval_s=heartbeat_interval_s,
                    dve_poll_interval_s=5.0)
    job = uniform_bag(100, image_bits=1e6, input_bits=4096,
                      ref_seconds=10.0, result_bits=4096)
    submission = system.provider.submit_job(
        job, target_size=25, heartbeat_interval_s=heartbeat_interval_s)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    system.sim.run(until=system.sim.now + 60.0)  # settle the dismantle
    outputs = {
        "makespan": report.makespan,
        "completed_at": report.completed_at,
        "tasks_assigned": report.tasks_assigned,
        "distinct_workers": report.distinct_workers,
        "events_executed": system.sim.events_executed,
        "sim_now": system.sim.now,
        "counters": system.controller.counters.as_dict(),
        "census": sorted(
            (pid, state.value, iid or "")
            for pid, (_seen, state, iid) in
            system.controller.registry.items()),
        "idle": sum(1 for p in system.pnas if p.state is PNAState.IDLE),
    }
    return trace, outputs


def test_same_seed_runs_are_event_identical():
    trace_a, out_a = _run_full_cycle(seed=11)
    trace_b, out_b = _run_full_cycle(seed=11)
    assert out_a == out_b
    assert len(trace_a) == len(trace_b)
    assert trace_a == trace_b  # same callbacks, same times, same order
    assert len(trace_a) > 500  # the cycle actually exercised the stack


def test_same_seed_runs_are_event_identical_cohort():
    """The macro task engine obeys the same determinism contract (and
    actually collapses the calendar — far fewer entries per cycle)."""
    trace_a, out_a = _run_full_cycle(seed=11, task_path="cohort")
    trace_b, out_b = _run_full_cycle(seed=11, task_path="cohort")
    assert out_a == out_b
    assert trace_a == trace_b
    assert 0 < len(trace_a) < 500  # the cohort path batches the calendar


def test_cohort_and_process_agree_on_outputs():
    """The two task paths must agree on every semantic output; only the
    calendar shape (events_executed / entry trace) may differ."""
    _trace_p, out_p = _run_full_cycle(seed=11)
    _trace_c, out_c = _run_full_cycle(seed=11, task_path="cohort")
    for key in ("makespan", "completed_at", "tasks_assigned",
                "distinct_workers", "counters", "census", "idle"):
        assert out_p[key] == out_c[key], key


def test_trace_detects_behavioral_change():
    """Sanity check that the trace is sensitive enough to notice change.

    (The golden scenario itself is loss-free with probability-1 wakeup,
    so *seeds* don't alter it — a protocol parameter must.)
    """
    trace_a, _ = _run_full_cycle(seed=11)
    trace_b, _ = _run_full_cycle(seed=11, heartbeat_interval_s=24.0)
    assert trace_a != trace_b
