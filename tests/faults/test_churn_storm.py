"""Correlated churn storms and the recovery they force."""

from repro.core import OddCISystem, PNAState
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def storm_system(spec, seed=1, n_pnas=10, target=6):
    with active_plan(parse_fault_plan(spec)):
        system = OddCISystem(seed=seed, maintenance_interval_s=15.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=300.0)
    submission = system.provider.submit_job(
        job, target_size=target, heartbeat_interval_s=10.0,
        lease_factor=3.0)
    return system, submission


def test_storm_fells_a_fraction_and_restores_them():
    system, _ = storm_system("churn_storm@50,mag=0.5,dur=100")
    system.sim.run(until=55.0)
    offline = [p for p in system.pnas if not p.online]
    assert len(offline) == 5  # 50% of 10 online nodes
    system.sim.run(until=160.0)
    assert all(p.online for p in system.pnas)


def test_storm_recovery_restores_instance_and_reports_mttr():
    system, submission = storm_system("churn_storm@60,mag=0.5,dur=80")
    system.sim.run(until=400.0)
    record = system.controller.instance(submission.instance_id)
    assert record.size == record.spec.target_size
    assert len(system.controller.mttr_history) >= 1
    assert all(m > 0 for m in system.controller.mttr_history)


def test_storm_victims_are_seed_deterministic():
    def victims(seed):
        system, _ = storm_system("churn_storm@50,mag=0.4,dur=200",
                                 seed=seed)
        system.sim.run(until=60.0)
        return tuple(p.pna_id for p in system.pnas if not p.online)

    assert victims(7) == victims(7)


def test_storm_does_not_double_restart_naturally_recovered_nodes():
    """A victim the test powers back on manually must not be restarted
    again by the storm's restore pass."""
    system, _ = storm_system("churn_storm@50,mag=0.5,dur=100")
    system.sim.run(until=55.0)
    victim = next(p for p in system.pnas if not p.online)
    victim.restart()
    system.sim.run(until=160.0)  # restore pass runs at t=150
    assert victim.online
    assert all(p.online for p in system.pnas)


def test_storm_mid_job_still_completes():
    with active_plan(parse_fault_plan("churn_storm@40,mag=0.6,dur=60")):
        system = OddCISystem(seed=3, maintenance_interval_s=15.0)
    system.add_pnas(8, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(24, image_bits=1e6, ref_seconds=15.0)
    submission = system.provider.submit_job(
        job, target_size=5, heartbeat_interval_s=10.0, lease_factor=3.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 24
    # The storm stranded leased tasks on powered-off nodes; leases
    # re-dispatched them.
    assert report.requeues >= 1
    assert system.fault_injector.fired == [(40.0, "churn_storm")]
