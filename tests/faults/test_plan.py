"""Fault-plan DSL, presets, validation, and the ambient-plan hook."""

import pytest

from repro.errors import (
    BackendError,
    ControllerDownError,
    FaultError,
    FaultPlanError,
    LinkDownError,
    NetworkError,
    OddCIError,
    SignatureError,
)
from repro.faults import (
    KINDS,
    PRESETS,
    FaultEvent,
    FaultPlan,
    active_plan,
    current_plan,
    install_plan,
    parse_fault_plan,
    uninstall_plan,
)


# -- parsing ------------------------------------------------------------------

def test_parse_literal_with_all_fields():
    plan = parse_fault_plan(
        "controller_crash@150,dur=90;"
        "churn_storm@400,mag=0.4,dur=200,jitter=5,target=pna-3")
    assert len(plan.events) == 2
    crash, storm = plan.events
    assert crash.kind == "controller_crash"
    assert crash.time == 150.0 and crash.duration_s == 90.0
    assert storm.magnitude == 0.4 and storm.jitter_s == 5.0
    assert storm.target == "pna-3"


def test_parse_none_and_passthrough():
    assert parse_fault_plan(None) is None
    plan = FaultPlan(events=(FaultEvent("broadcast_outage", 10.0),))
    assert parse_fault_plan(plan) is plan


def test_presets_resolve_and_none_is_empty():
    for name, spec in PRESETS.items():
        plan = parse_fault_plan(name)
        assert plan.name == name
        assert len(plan.events) == len(
            [tok for tok in spec.split(";") if tok])
    assert parse_fault_plan("none").events == ()


def test_describe_round_trips():
    spec = ("controller_crash@150,dur=90;"
            "churn_storm@400,dur=200,mag=0.4,jitter=5,target=pna-3")
    plan = parse_fault_plan(spec)
    again = parse_fault_plan(plan.describe())
    assert again.events == plan.events


@pytest.mark.parametrize("bad", [
    "explode@10",                       # unknown kind
    "controller_crash",                 # missing @TIME
    "controller_crash@ten",             # non-numeric time
    "controller_crash@-5",              # negative time
    "controller_crash@5,wat=3",         # unknown field
    "controller_crash@5,dur=abc",       # non-numeric field
    "churn_storm@5,mag=1.5",            # fraction > 1
    "churn_storm@5",                    # fraction 0 (missing)
    "link_down@5,mag=2",                # fraction > 1
    "signature_corruption@5",           # zero-length window
])
def test_malformed_plans_raise(bad):
    with pytest.raises(FaultPlanError):
        parse_fault_plan(bad)


def test_every_kind_is_constructible():
    fractional = ("link_down", "churn_storm",
                  "saboteur", "free_rider", "straggler", "heartbeat_spoof")
    for kind in KINDS:
        mag = 0.5 if kind in fractional else 2.0
        ev = FaultEvent(kind, 10.0, duration_s=5.0, magnitude=mag)
        assert ev.kind == kind


# -- ambient plan -------------------------------------------------------------

def test_install_uninstall_current():
    assert current_plan() is None
    plan = parse_fault_plan("broadcast_outage@10,dur=5")
    install_plan(plan)
    try:
        assert current_plan() is plan
    finally:
        uninstall_plan()
    assert current_plan() is None


def test_active_plan_nests_and_restores():
    outer = parse_fault_plan("broadcast_outage@10,dur=5")
    inner = parse_fault_plan("controller_crash@20,dur=5")
    with active_plan(outer):
        assert current_plan() is outer
        with active_plan(inner):
            assert current_plan() is inner
        assert current_plan() is outer
    assert current_plan() is None


def test_active_plan_none_is_noop():
    with active_plan(None) as plan:
        assert plan is None
        assert current_plan() is None


# -- error hierarchy (satellite: every fault-path error is a FaultError) ------

def test_fault_errors_share_the_oddci_branch():
    for exc_type in (FaultPlanError, ControllerDownError, BackendError,
                     LinkDownError, SignatureError):
        assert issubclass(exc_type, FaultError)
        assert issubclass(exc_type, OddCIError)
    # Network-flavoured faults keep NetworkError as their primary base
    # so pre-existing `except NetworkError` handlers still catch them.
    assert issubclass(LinkDownError, NetworkError)
    assert issubclass(SignatureError, NetworkError)
    assert LinkDownError.__mro__.index(NetworkError) < \
        LinkDownError.__mro__.index(FaultError)


# -- conflict validation (satellite: reject ambiguous/overlapping plans) ------

def test_duplicate_event_ids_rejected_naming_both_events():
    with pytest.raises(FaultPlanError) as exc:
        parse_fault_plan("broadcast_outage@10,dur=5,id=x;"
                         "controller_crash@40,dur=5,id=x")
    message = str(exc.value)
    assert "duplicate fault event id 'x'" in message
    # Actionable: the message points at both offending events.
    assert "#1" in message and "#2" in message
    assert "broadcast_outage" in message and "controller_crash" in message


def test_distinct_event_ids_are_fine():
    plan = parse_fault_plan("broadcast_outage@10,dur=5,id=a;"
                            "controller_crash@40,dur=5,id=b")
    assert [ev.event_id for ev in plan.events] == ["a", "b"]


def test_overlapping_same_kind_windows_rejected_with_spans():
    with pytest.raises(FaultPlanError) as exc:
        parse_fault_plan("broadcast_outage@10,dur=20;"
                         "broadcast_outage@20,dur=5")
    message = str(exc.value)
    assert "overlapping broadcast_outage windows" in message
    assert "[10, 30)" in message and "[20, 25)" in message
    assert "stagger" in message


def test_jitter_widens_the_conflict_window():
    # [10, 10+5+10) = [10, 25) overlaps [20, 25): jitter counts.
    with pytest.raises(FaultPlanError, match="overlapping"):
        parse_fault_plan("broadcast_outage@10,dur=5,jitter=10;"
                         "broadcast_outage@20,dur=5")


def test_touching_windows_do_not_overlap():
    plan = parse_fault_plan("broadcast_outage@10,dur=5;"
                            "broadcast_outage@15,dur=5")
    assert len(plan.events) == 2


def test_instantaneous_events_never_conflict():
    # Zero-length events at the same instant are a legal double-tap.
    plan = parse_fault_plan("carousel_interrupt@10,mag=2;"
                            "carousel_interrupt@10,mag=3")
    assert len(plan.events) == 2


def test_distinct_targets_do_not_conflict():
    plan = parse_fault_plan(
        "churn_storm@10,dur=20,mag=0.4,target=pna-1;"
        "churn_storm@15,dur=20,mag=0.4,target=pna-2")
    assert len(plan.events) == 2


def test_distinct_kinds_may_overlap():
    plan = parse_fault_plan("broadcast_outage@10,dur=20;"
                            "controller_crash@15,dur=20")
    assert len(plan.events) == 2
