"""Controller crash → checkpoint restore → census reconciliation."""

import pytest

from repro.core import OddCISystem
from repro.errors import ControllerDownError, OddCIError
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def running_system(seed=0, n_pnas=10, target=6, plan=None):
    with active_plan(plan):
        system = OddCISystem(seed=seed, maintenance_interval_s=20.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=300.0)
    submission = system.provider.submit_job(
        job, target_size=target, heartbeat_interval_s=10.0)
    system.sim.run(until=60.0)
    assert system.controller.instance(submission.instance_id).size == target
    return system, submission


def test_crash_clears_census_and_blocks_provider_api():
    system, submission = running_system()
    controller = system.controller
    controller.crash()
    assert not controller.alive
    assert controller.registry == {}
    record = controller.instance(submission.instance_id)
    assert record.size == 0
    job = uniform_bag(10, image_bits=1e6, ref_seconds=1.0)
    with pytest.raises(ControllerDownError):
        system.provider.submit_job(job, target_size=2)
    with pytest.raises(ControllerDownError):
        system.provider.release(submission.instance_id)


def test_restore_reconciles_census_from_heartbeats():
    system, submission = running_system()
    controller = system.controller
    crash_at = system.sim.now
    controller.crash()
    # Heartbeats sent while down vanish (undeliverable), they don't queue.
    system.sim.run(until=crash_at + 30.0)
    assert controller.registry == {}
    controller.restore()
    assert controller.alive
    # Instance is identity-preserved, degraded until heartbeats return.
    record = controller.instance(submission.instance_id)
    assert record is submission.record
    system.sim.run(until=crash_at + 120.0)
    assert record.size == record.spec.target_size
    assert len(controller.registry) == len(system.pnas)
    assert controller.mttr_history, "recovery must close the MTTR clock"
    assert controller.counters["crashes"] == 1
    assert controller.counters["restores"] == 1


def test_restore_requires_a_crash():
    system, _ = running_system()
    with pytest.raises(OddCIError):
        system.controller.restore()


def test_crash_is_idempotent():
    system, _ = running_system()
    system.controller.crash()
    system.controller.crash()  # no-op, no double unregister
    assert system.controller.counters["crashes"] == 1


def test_injected_crash_recovers_and_job_completes():
    """The acceptance-style end-to-end: a scripted crash mid-job, the
    workload still finishes and MTTR is reported."""
    plan = parse_fault_plan("controller_crash@80,dur=40")
    with active_plan(plan):
        system = OddCISystem(seed=3, maintenance_interval_s=20.0)
    system.add_pnas(8, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(30, image_bits=1e6, ref_seconds=20.0)
    submission = system.provider.submit_job(
        job, target_size=5, heartbeat_interval_s=10.0, lease_factor=3.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 30
    controller = system.controller
    assert controller.counters["crashes"] == 1
    assert controller.counters["restores"] == 1
    assert controller.alive
    assert len(controller.mttr_history) >= 1
    assert all(mttr > 0 for mttr in controller.mttr_history)


def test_job_finishing_during_crash_does_not_explode():
    """Auto-release during controller downtime is tolerated; the
    instance is reaped after restore instead."""
    plan = parse_fault_plan("controller_crash@5,dur=120")
    with active_plan(plan):
        system = OddCISystem(seed=4, maintenance_interval_s=20.0)
    system.add_pnas(6, heartbeat_interval_s=10.0, dve_poll_interval_s=2.0)
    # Small job: recruited before the crash, finishes inside the window.
    job = uniform_bag(20, image_bits=1e6, ref_seconds=2.0)
    submission = system.provider.submit_job(
        job, target_size=4, heartbeat_interval_s=10.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 20
    assert not system.controller.alive  # finished during the outage
    system.sim.run(until=200.0)
    assert system.controller.alive


def test_crash_on_maintenance_tick_does_not_fire_a_ghost_round():
    """A crash injected at the exact instant of a maintenance tick must
    not let the already-dequeued round run against the freshly-cleared
    census — that round would see a full deficit and broadcast a bogus
    wakeup from a dead Controller, recruiting every idle PNA."""
    # maintenance_interval_s=20 in running_system → ticks at 20,40,60,80.
    plan = parse_fault_plan("controller_crash@80,dur=40")
    system, submission = running_system(seed=3, plan=plan)
    busy_before = system.busy_count()
    assert busy_before == submission.record.spec.target_size
    # Initial recruitment may legitimately over-shoot and trim; only
    # trims *caused by the crash* count against the guard.
    trims_before = system.controller.counters["trim_replies"]
    # Just after the crash instant: nobody new recruited.
    system.sim.run(until=81.0)
    assert not system.controller.alive
    assert system.busy_count() == busy_before
    # Through the outage and well past restore: size settles at target
    # with no over-recruit/trim churn.
    system.sim.run(until=300.0)
    assert system.controller.alive
    assert system.busy_count() == busy_before
    assert system.controller.counters["trim_replies"] == trims_before
