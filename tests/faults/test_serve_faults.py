"""Service tier under a controller crash: degraded SLO, zero loss.

The tier's fault contract (DESIGN.md §14): a crashed control plane
*degrades* service — provisioning stalls lift p99 time-to-ready, new
requests bounce with classified rejections — but never strands a
request.  ``lost == issued - settled`` must be zero under the fault
plan, which is exactly what distinguishes admission control from a
wedge.
"""

import pytest

from repro.core import OddCISystem
from repro.serve import PoolConfig, ServiceTier, TrafficSpec

#: Generous cold-provision deadline: crash-stalled provisions should
#: *finish late* (elevating p99) rather than be truncated out of the
#: ttr sample by an early timeout.
REQUEST_TIMEOUT_S = 300.0

#: Comfortably below the 24-PNA fleet's knee: the no-fault baseline
#: must be unsaturated (no provisioning queueing), so the crash run's
#: stalled-provision tail is *additional* latency, not relief from
#: contention the rejections happened to shed.
TRAFFIC = TrafficSpec(rate_rps=0.04, horizon_s=300.0, target_size=4,
                      hold_s_mean=40.0, n_tenants=4)


def run_tier(seed=0, n_pnas=24, crash_at=None, down_for=90.0):
    system = OddCISystem(seed=seed, maintenance_interval_s=15.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=10.0,
                    dve_poll_interval_s=5.0)
    tier = ServiceTier(
        system, TRAFFIC,
        pool=PoolConfig(warm_target=2, standby_size=4,
                        refill_interval_s=20.0,
                        provision_timeout_s=REQUEST_TIMEOUT_S),
        image_bits=1e6, request_timeout_s=REQUEST_TIMEOUT_S)
    if crash_at is not None:
        system.sim.call_at(crash_at, system.controller.crash)
        system.sim.call_at(crash_at + down_for, system.controller.restore)
    return tier.run()


def test_controller_crash_degrades_slo_without_losing_requests():
    base = run_tier()
    hit = run_tier(crash_at=120.0, down_for=90.0)
    # Liveness: every request settles in both runs.
    assert base["lost"] == 0
    assert hit["lost"] == 0
    assert hit["issued"] == base["issued"]  # same arrival schedule
    # The crash is visible: classified rejections appear...
    crash_rejects = (hit["rejected"].get("controller_down", 0)
                     + hit["rejected"].get("timeout", 0))
    assert crash_rejects > 0
    assert hit["rejected_total"] > base["rejected_total"]
    # ...and tail latency is elevated, not truncated away.
    assert hit["ttr_p99_s"] > base["ttr_p99_s"]
    # The pool degrades (husks discarded, refill stalls) but recovers
    # enough to keep serving: hit ratio drops yet stays non-zero.
    assert hit["pool"]["discarded"] + hit["pool"]["misses"] >= \
        base["pool"]["discarded"] + base["pool"]["misses"]


def test_crash_rejections_release_quota_slots():
    """Rejected-during-crash creates must give their concurrency slots
    back — otherwise the restored controller would serve a phantom-full
    tenant."""
    hit = run_tier(crash_at=120.0, down_for=90.0)
    assert hit["lost"] == 0
    # Post-restore completions prove slots were released and traffic
    # kept flowing after the outage window.
    assert hit["completed"] > 0
