"""Fault-plan compilation to vector-tier windows (repro.faults.masks)."""

import math

import numpy as np
import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    CompiledFaultPlan,
    FaultEvent,
    FaultPlan,
    FaultWindow,
    compile_fault_plan,
    deferred_start,
    storm_victims,
)
from repro.faults.masks import (
    CENSUS_OUTAGE_KINDS,
    COMPUTE_OUTAGE_KINDS,
    RECRUITMENT_BLACKOUT_KINDS,
    active_fraction,
    total_outage_span,
)


def rng():
    return np.random.default_rng(7)


# -- compilation semantics ----------------------------------------------------

def test_every_plan_kind_lands_in_exactly_one_effect_group():
    plan = FaultPlan((
        FaultEvent("churn_storm", 100.0, duration_s=50.0, magnitude=0.2),
        FaultEvent("link_down", 200.0, duration_s=10.0, magnitude=0.5),
        FaultEvent("backend_crash", 300.0, duration_s=30.0),
        FaultEvent("broadcast_outage", 400.0, duration_s=20.0),
        FaultEvent("signature_corruption", 500.0, duration_s=25.0),
        FaultEvent("controller_crash", 600.0, duration_s=40.0),
    ), name="all-kinds")
    compiled = compile_fault_plan(plan, rng())
    assert len(compiled) == 6
    assert {w.kind for w in compiled.compute_outages()} == set(
        COMPUTE_OUTAGE_KINDS)
    assert {w.kind for w in compiled.recruitment_blackouts()} <= set(
        RECRUITMENT_BLACKOUT_KINDS)
    assert {w.kind for w in compiled.census_outages()} == set(
        CENSUS_OUTAGE_KINDS)
    # Windows come out sorted by start regardless of plan order.
    starts = [w.start for w in compiled.windows]
    assert starts == sorted(starts)


def test_magnitude_resolution_per_kind():
    plan = FaultPlan((
        FaultEvent("churn_storm", 10.0, duration_s=5.0, magnitude=0.35),
        FaultEvent("link_down", 20.0, duration_s=5.0),          # mag 0 = all
        FaultEvent("backend_crash", 30.0, duration_s=5.0),
    ), name="fractions")
    compiled = compile_fault_plan(plan, rng())
    by_kind = {w.kind: w for w in compiled.windows}
    assert by_kind["churn_storm"].fraction == pytest.approx(0.35)
    assert by_kind["link_down"].fraction == 1.0
    assert by_kind["backend_crash"].fraction == 1.0


def test_permanent_fault_compiles_to_open_window():
    plan = FaultPlan((FaultEvent("controller_crash", 50.0),), name="perm")
    (window,) = compile_fault_plan(plan, rng()).windows
    assert window.start == 50.0
    assert math.isinf(window.end)


def test_link_flap_expands_into_down_phases():
    plan = FaultPlan((FaultEvent("link_flap", 100.0, duration_s=10.0,
                                 magnitude=3.0),), name="flap")
    compiled = compile_fault_plan(plan, rng())
    downs = compiled.compute_outages()
    assert [w.kind for w in downs] == ["link_down"] * 3
    # Alternating down/up: phases at 100, 120, 140, each 10 s long.
    assert [(w.start, w.end) for w in downs] == [
        (100.0, 110.0), (120.0, 130.0), (140.0, 150.0)]


def test_carousel_interrupt_degrades_to_broadcast_outage():
    plan = FaultPlan((FaultEvent("carousel_interrupt", 60.0,
                                 duration_s=30.0, magnitude=2.0),),
                     name="carousel")
    (window,) = compile_fault_plan(plan, rng()).windows
    assert window.kind == "broadcast_outage"
    assert (window.start, window.end) == (60.0, 90.0)


def test_jitter_resolved_in_declaration_order_deterministically():
    plan = FaultPlan((
        FaultEvent("churn_storm", 100.0, duration_s=10.0, magnitude=0.1,
                   jitter_s=20.0),
        FaultEvent("broadcast_outage", 200.0, duration_s=10.0,
                   jitter_s=20.0),
    ), name="jitter")
    a = compile_fault_plan(plan, np.random.default_rng(3))
    b = compile_fault_plan(plan, np.random.default_rng(3))
    assert [(w.start, w.end) for w in a.windows] == \
           [(w.start, w.end) for w in b.windows]
    for w, event in zip(a.windows, plan.events):
        assert event.time <= w.start <= event.time + 20.0


def test_adversary_kinds_are_rejected_not_dropped():
    plan = FaultPlan((FaultEvent("saboteur", 0.0, magnitude=0.1),),
                     name="bad")
    with pytest.raises(FaultPlanError, match="event tier"):
        compile_fault_plan(plan, rng())


def test_window_validation_rejects_empty_interval():
    with pytest.raises(FaultPlanError):
        FaultWindow(kind="link_down", start=10.0, end=10.0)


# -- storm victims ------------------------------------------------------------

def test_storm_victims_follow_injector_count_rule():
    mask = storm_victims(rng(), 1000, 0.3)
    assert mask.sum() == max(1, round(0.3 * 1000))
    # Tiny fractions still claim one victim, like the injector.
    assert storm_victims(rng(), 1000, 1e-6).sum() == 1
    # Full-fleet outage: everyone, no RNG draw consumed.
    g = rng()
    state_before = g.bit_generator.state["state"]["state"]
    assert storm_victims(g, 50, 1.0).all()
    assert g.bit_generator.state["state"]["state"] == state_before
    assert storm_victims(rng(), 0, 0.5).size == 0


# -- deferred start -----------------------------------------------------------

def test_deferred_start_chains_through_abutting_windows():
    blackouts = [
        FaultWindow(kind="broadcast_outage", start=10.0, end=20.0),
        FaultWindow(kind="signature_corruption", start=20.0, end=35.0),
    ]
    assert deferred_start(5.0, blackouts) == 5.0
    assert deferred_start(12.0, blackouts) == 35.0
    assert deferred_start(20.0, blackouts) == 35.0
    assert deferred_start(35.0, blackouts) == 35.0


def test_deferred_start_rejects_permanent_blackout():
    forever = [FaultWindow(kind="broadcast_outage", start=10.0,
                           end=math.inf)]
    with pytest.raises(FaultPlanError, match="forever"):
        deferred_start(10.0, forever)


# -- helpers ------------------------------------------------------------------

def test_total_outage_span_clips_to_horizon():
    windows = [
        FaultWindow(kind="link_down", start=-5.0, end=10.0),
        FaultWindow(kind="link_down", start=90.0, end=200.0),
    ]
    assert total_outage_span(windows, 100.0) == pytest.approx(20.0)


def test_active_fraction_saturates_at_one():
    windows = [
        FaultWindow(kind="churn_storm", start=0.0, end=10.0, fraction=0.7),
        FaultWindow(kind="link_down", start=5.0, end=15.0, fraction=0.7),
    ]
    assert active_fraction(windows, 2.0) == pytest.approx(0.7)
    assert active_fraction(windows, 7.0) == 1.0
    assert active_fraction(windows, 12.0) == pytest.approx(0.7)
    assert active_fraction(windows, 20.0) == 0.0


def test_empty_compiled_plan_is_inert():
    compiled = CompiledFaultPlan((), name="")
    assert len(compiled) == 0
    assert compiled.compute_outages() == []
    assert compiled.recruitment_blackouts() == []
    assert compiled.census_outages() == []
