"""Adversary fault kinds through the injector: flips, restores, zombies."""

from repro.certify import Adversary
from repro.core import OddCISystem
from repro.core.messages import PNAState
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def test_saboteur_window_flips_a_fraction_then_restores():
    plan = parse_fault_plan("saboteur@5,dur=30,mag=0.5")
    with active_plan(plan):
        system = OddCISystem(seed=3)
    system.add_pnas(8, heartbeat_interval_s=10.0)
    system.sim.run(until=10.0)
    flipped = [p for p in system.pnas if p.adversary is not None]
    assert len(flipped) == 4                       # round(0.5 * 8)
    assert all(p.adversary.kind == "saboteur" for p in flipped)
    system.sim.run(until=40.0)
    # Window over: every node honest again.
    assert all(p.adversary is None for p in system.pnas)


def test_adversary_victims_are_seed_deterministic():
    def victims(seed):
        plan = parse_fault_plan("saboteur@5,dur=10,mag=0.5")
        with active_plan(plan):
            system = OddCISystem(seed=seed)
        system.add_pnas(8, heartbeat_interval_s=10.0)
        system.sim.run(until=6.0)
        return tuple(sorted(
            p.pna_id for p in system.pnas if p.adversary is not None))

    assert victims(7) == victims(7)


def test_stacked_windows_do_not_reflip_compromised_nodes():
    # Two saboteur waves: the second only recruits from honest nodes,
    # so together they cover 6 distinct victims out of 8.
    plan = parse_fault_plan("saboteur@5,dur=100,mag=0.5;"
                            "free_rider@10,dur=100,mag=0.25")
    with active_plan(plan):
        system = OddCISystem(seed=11)
    system.add_pnas(8, heartbeat_interval_s=10.0)
    system.sim.run(until=20.0)
    kinds = [p.adversary.kind for p in system.pnas
             if p.adversary is not None]
    assert sorted(kinds) == ["free_rider", "saboteur", "saboteur",
                             "saboteur", "saboteur"]


def test_heartbeat_spoof_zombie_holds_census_slot_while_dve_is_dead():
    system = OddCISystem(seed=5, maintenance_interval_s=50.0)
    system.add_pnas(3, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(30, image_bits=1e6, ref_seconds=20.0)
    submission = system.provider.submit_job(
        job, target_size=3, heartbeat_interval_s=10.0,
        lease_factor=3.0, release_on_completion=False)
    system.sim.run(until=30.0)
    record = system.controller.instance(submission.instance_id)
    assert record.size == 3

    victim = next(p for p in system.pnas if p.state is PNAState.BUSY)
    victim.set_adversary(Adversary("heartbeat_spoof", victim.pna_id))
    # The client loop died on the spot but the node still claims BUSY.
    assert victim.dve is None
    assert victim.state is PNAState.BUSY

    system.sim.run(until=100.0)
    # Zombie heartbeats keep the census slot occupied: the Controller
    # cannot tell the dead DVE from a slow one.
    assert record.size == 3
    assert victim.state is PNAState.BUSY and victim.dve is None

    victim.clear_adversary()
    # Nothing runs behind the facade; the node goes honest-idle...
    assert victim.state is PNAState.IDLE
    # ...and maintenance re-recruits it, so the job still finishes.
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.n_tasks == 30
    assert submission.backend.done
