"""Backend outage → lease expiry → re-dispatch with backoff."""

from repro.core import OddCISystem
from repro.core.backend import Backend
from repro.faults import active_plan, parse_fault_plan
from repro.sim.core import Simulator
from repro.workloads import uniform_bag


def test_injected_backend_outage_redispatches_and_completes():
    plan = parse_fault_plan("backend_crash@40,dur=30")
    with active_plan(plan):
        system = OddCISystem(seed=1, maintenance_interval_s=20.0)
    system.add_pnas(8, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(24, image_bits=1e6, ref_seconds=15.0)
    submission = system.provider.submit_job(
        job, target_size=6, heartbeat_interval_s=10.0, lease_factor=1.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 24
    backend = submission.backend
    assert backend.crashes == 1
    assert backend.restarts == 1
    assert backend.alive
    # The outage stranded in-flight work; leases re-queued it.
    assert report.requeues >= 1
    assert system.fault_injector.fired[0] == (40.0, "backend_crash")


def test_backoff_grows_lease_deterministically():
    """With a backoff base, each re-dispatch of the same task gets a
    longer lease; the jitter draw is seed-stable."""

    def lease_after_attempts(seed):
        sim = Simulator(seed=seed)
        job = uniform_bag(1, image_bits=1e6, ref_seconds=10.0)

        from repro.core.network import Router

        router = Router(sim)
        backend = Backend(sim, job, router, backend_id="b0",
                          lease_factor=2.0, lease_backoff_base=2.0,
                          lease_backoff_jitter=0.1)
        base = 2.0 * (10.0 * backend.worst_case_slowdown
                      + backend.poll_interval_s)
        leases = []
        for attempt in (0, 1, 2):
            backend._attempts[0] = attempt
            lease_s = base
            if attempt:
                lease_s *= 2.0 ** attempt
                lease_s *= 1.0 + 0.1 * float(
                    sim.rng(backend._backoff_stream).random())
            leases.append(lease_s)
        return leases

    a = lease_after_attempts(5)
    b = lease_after_attempts(5)
    assert a == b
    assert a[0] < a[1] < a[2]


def test_default_backoff_draws_no_rng():
    """At default parameters the backoff stream must never be touched —
    that is what keeps pre-fault-subsystem runs byte-identical."""
    sim = Simulator(seed=0)
    from repro.core.network import Router

    job = uniform_bag(2, image_bits=1e6, ref_seconds=5.0)
    backend = Backend(sim, job, Router(sim), backend_id="b1",
                      lease_factor=1.0)
    assert backend.lease_backoff_base == 1.0
    assert backend.lease_backoff_jitter == 0.0
    # Even after simulated re-dispatches, defaults keep the legacy
    # lease arithmetic and never create the backoff RNG stream.
    backend._attempts[0] = 3
    sim.run(until=100.0)
    assert backend._backoff_stream not in sim._rng_streams


def test_crash_restore_idempotent():
    sim = Simulator(seed=0)
    from repro.core.network import Router

    job = uniform_bag(2, image_bits=1e6, ref_seconds=5.0)
    backend = Backend(sim, job, Router(sim), backend_id="b2",
                      lease_factor=1.0)
    backend.crash()
    backend.crash()
    assert backend.crashes == 1
    backend.restore()
    backend.restore()
    assert backend.restarts == 1
    assert backend.alive
