"""Per-shard fault isolation: one crashed controller, federation lives."""

from repro.core import FederatedOddCISystem, NetworkDescriptor
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def federation_under(plan_text, capacity=6, seed=0):
    networks = [
        NetworkDescriptor(name="desk", capacity=capacity,
                          cost_per_node_hour=0.5),
        NetworkDescriptor(name="dtv", capacity=capacity,
                          cost_per_node_hour=1.0),
        NetworkDescriptor(name="cell", capacity=capacity,
                          cost_per_node_hour=2.0),
    ]
    with active_plan(parse_fault_plan(plan_text)):
        system = FederatedOddCISystem(
            networks, seed=seed, placement="spread",
            maintenance_interval_s=20.0)
    system.build_fleets(heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    return system


def test_crashing_one_shard_leaves_the_other_two_dispatching():
    system = federation_under(
        "controller_crash@120,dur=100,target=dtv")
    job = uniform_bag(400, image_bits=1e6, ref_seconds=8.0)
    submission = system.provider.submit_job(
        job, target_size=12, heartbeat_interval_s=10.0,
        lease_factor=3.0, worst_case_slowdown=2.0,
        release_on_completion=False)
    backend = submission.backend

    snapshots = {}

    def snapshot(tag):
        snapshots[tag] = dict(backend.assigned_by_network)

    # Inside the crash window: the injector downed dtv's controller only.
    def probe_mid():
        snapshot("mid")
        assert not system.shard("dtv").controller.alive
        assert system.shard("desk").controller.alive
        assert system.shard("cell").controller.alive

    system.sim.call_at(119.0, snapshot, "pre")
    system.sim.call_at(170.0, probe_mid)
    system.sim.call_at(219.0, snapshot, "late")
    system.provider.run_job_to_completion(submission, limit_s=1e5)

    assert backend.done
    # The surviving shards kept dispatching through the whole window.
    for network in ("desk", "cell"):
        assert snapshots["late"][network] > snapshots["mid"][network] \
            > snapshots["pre"][network] > 0, network
    # Recovery: the injector restored dtv and recruitment resumed there.
    assert system.shard("dtv").controller.alive
    assert system.shard("dtv").controller.counters["crashes"] == 1
    assert system.shard("desk").controller.counters["crashes"] == 0
    assert system.shard("cell").controller.counters["crashes"] == 0
    assert backend.completed_by_network["desk"] > 0
    assert backend.completed_by_network["cell"] > 0
    assert [kind for _t, kind in system.fault_injector.fired] == \
        ["controller_crash"]


def test_crash_target_by_controller_id():
    system = federation_under(
        "controller_crash@120,dur=60,target=controller:cell")

    def probe_mid():
        assert not system.shard("cell").controller.alive
        assert system.shard("desk").controller.alive
        assert system.shard("dtv").controller.alive

    system.sim.call_at(150.0, probe_mid)
    system.sim.run(until=300.0)
    assert system.shard("cell").controller.alive
    assert system.shard("cell").controller.counters["crashes"] == 1


def test_crash_without_target_downs_every_shard():
    system = federation_under("controller_crash@120,dur=60")

    def probe_mid():
        for shard in system.shards:
            assert not shard.controller.alive, shard.name

    system.sim.call_at(150.0, probe_mid)
    system.sim.run(until=300.0)
    for shard in system.shards:
        assert shard.controller.alive, shard.name
        assert shard.controller.counters["crashes"] == 1
