"""Signature corruption: PNAs must reject tampered control messages."""

from repro.core import OddCISystem
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def test_corrupted_wakeups_are_rejected_then_recruitment_recovers():
    # Corruption is active from t=5 for 60s; the job arrives at t=10,
    # so its initial wakeup goes out tampered and every PNA must drop
    # it.  Maintenance re-wakeups after t=65 carry good signatures.
    plan = parse_fault_plan("signature_corruption@5,dur=60")
    with active_plan(plan):
        system = OddCISystem(seed=1, maintenance_interval_s=20.0)
    system.add_pnas(8, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    system.sim.run(until=10.0)
    assert system.controller.corrupting_signatures

    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=300.0)
    submission = system.provider.submit_job(
        job, target_size=5, heartbeat_interval_s=10.0)
    system.sim.run(until=60.0)
    # Inside the window: nobody joined, the tampering was detected.
    record = system.controller.instance(submission.instance_id)
    assert record.size == 0
    assert sum(p.dropped_bad_signature for p in system.pnas) >= 8
    assert system.controller.counters["signatures_corrupted"] >= 1

    system.sim.run(until=200.0)
    # After the window: maintenance re-sent a clean wakeup; fleet full.
    assert not system.controller.corrupting_signatures
    assert record.size == record.spec.target_size


def test_corruption_window_restores_exactly():
    plan = parse_fault_plan("signature_corruption@5,dur=60")
    with active_plan(plan):
        system = OddCISystem(seed=2, maintenance_interval_s=20.0)
    system.add_pnas(2, heartbeat_interval_s=10.0)
    system.sim.run(until=4.0)
    assert not system.controller.corrupting_signatures
    system.sim.run(until=6.0)
    assert system.controller.corrupting_signatures
    system.sim.run(until=66.0)
    assert not system.controller.corrupting_signatures


# -- carousel re-join window (satellite: refusal must retry, not drop) --------

def test_dtv_xlet_retries_tampered_control_instead_of_consuming_it():
    """A PNA that rejects a corrupted control message during a carousel
    re-join window keeps retrying the same config version on every
    repetition — the instance is delayed, not permanently short."""
    from repro.dtv_oddci import OddCIDTVSystem
    from repro.net.message import MEGABYTE, bits_from_bytes

    system = OddCIDTVSystem(beta_bps=1_000_000.0,
                            maintenance_interval_s=100.0, seed=13,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(1, heartbeat_interval_s=50.0,
                         dve_poll_interval_s=10.0)
    system.sim.run(until=60.0)
    xlet = system.boxes[0].app_manager.running_xlet(777)
    pna = xlet.pna
    assert pna.online
    consumed = xlet._last_config_version

    # The wakeup goes out through the carousel with a tampered tag.
    system.controller.corrupt_signatures(True)
    job = uniform_bag(10, image_bits=1 * MEGABYTE, ref_seconds=100.0)
    submission = system.provider.submit_job(
        job, target_size=1, heartbeat_interval_s=50.0)
    system.sim.run(until=260.0)

    record = system.controller.instance(submission.instance_id)
    assert record.size == 0
    # More drops than tampered publishes pins the retry: a loop that
    # consumed the version on first refusal would count exactly one
    # drop per publish (one per maintenance re-wakeup here).
    corrupted = system.controller.counters["signatures_corrupted"]
    assert pna.dropped_bad_signature > corrupted >= 1
    assert xlet._last_config_version == consumed

    # The stored file's tag stays tampered forever; recovery rides the
    # next clean maintenance republish, which the xlet still accepts
    # because the refused version was never marked consumed.
    system.controller.corrupt_signatures(False)
    system.sim.run(until=600.0)
    assert record.size == 1
    assert xlet._last_config_version > consumed
