"""Lossy / partitioned direct channels (grown from the original
``tests/test_failure_injection.py``).

The paper's direct channels are home broadband — loss happens.  These
tests verify that heartbeat loss does not wedge the Controller, that
lease-based re-queuing lets jobs finish despite message loss on the
task path, and that every silently swallowed message is observable
through the link's ``dropped`` / ``refused`` counters and ``net``-
category trace events.
"""

import pytest

from repro.core import OddCISystem, PNAState
from repro.net.link import DuplexChannel, Link
from repro.net.message import Message
from repro.sim.core import Simulator
from repro.telemetry.trace import Tracer, active
from repro.workloads import uniform_bag


def lossy_system(loss: float, n_pnas: int, seed: int = 0):
    """OddCISystem whose PNA direct channels drop messages i.i.d."""
    system = OddCISystem(seed=seed, maintenance_interval_s=20.0)
    # Rebuild channels with loss (add_pna creates clean ones, so we
    # construct PNAs manually through the same code path).
    from repro.core.pna import PNA

    for i in range(n_pnas):
        channel = DuplexChannel(system.sim, rate_bps=system.delta_bps,
                                latency_s=system.delta_latency_s,
                                loss=loss, name=f"lossy{i}.direct")
        pna = PNA(system.sim, f"pna-{i}",
                  router=system.router, channel=channel,
                  controller_key=system.keys.key_of(
                      system.controller.controller_id),
                  controller_id=system.controller.controller_id,
                  heartbeat_interval_s=10.0,
                  dve_poll_interval_s=5.0)
        system.control_plane.attach(pna)
        system.pnas.append(pna)
    return system


def test_heartbeat_loss_does_not_wedge_controller():
    system = lossy_system(loss=0.3, n_pnas=10, seed=2)
    system.sim.run(until=400.0)
    # Despite 30% loss, enough heartbeats get through to register all.
    assert len(system.controller.registry) == 10
    assert system.controller.counters["heartbeats"] > 0
    # Satellite: the loss is observable, not silent.
    assert sum(p.channel.uplink.dropped for p in system.pnas) > 0


def test_job_completes_under_loss_with_timeout_recovery():
    """Task-protocol messages can be lost; the DVE's pending reply then
    never settles — the lease re-queues the task and another worker
    (or a later poll) finishes it."""
    system = lossy_system(loss=0.05, n_pnas=8, seed=3)
    job = uniform_bag(40, image_bits=1e6, ref_seconds=5.0)
    submission = system.provider.submit_job(
        job, target_size=8, heartbeat_interval_s=10.0, lease_factor=0.2)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 40


def test_heavy_loss_job_still_finishes_with_replication_and_leases():
    system = lossy_system(loss=0.15, n_pnas=10, seed=4)
    job = uniform_bag(25, image_bits=1e6, ref_seconds=3.0)
    submission = system.provider.submit_job(
        job, target_size=10, heartbeat_interval_s=10.0,
        lease_factor=0.1, replicate_tail=True)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.n_tasks == 25
    assert report.requeues + report.replicas_issued >= 1


def test_membership_expiry_under_total_silence():
    """A PNA whose uplink dies completely is expired from its instance
    and replaced by recomposition."""
    system = OddCISystem(seed=5, maintenance_interval_s=15.0)
    system.add_pnas(10, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=300.0)
    submission = system.provider.submit_job(job, target_size=6,
                                            heartbeat_interval_s=10.0)
    system.sim.run(until=60.0)
    busy = [p for p in system.pnas if p.state is PNAState.BUSY]
    # Cut two uplinks (node still "runs", but is unreachable).
    for p in busy[:2]:
        p.channel.uplink.set_up(False)
    system.sim.run(until=400.0)
    record = system.controller.instance(submission.instance_id)
    member_ids = set(record.members)
    assert all(p.pna_id not in member_ids for p in busy[:2])
    assert record.size >= 5  # recomposed from the idle pool
    # Satellite: fire-and-forget sends into the dead uplinks were
    # refused (counted), never silently lost.
    assert all(p.channel.uplink.refused > 0 for p in busy[:2])


# -- satellite: Link drop observability ---------------------------------------

def _message(sim, payload_bits=1000.0):
    return Message(sender="a", recipient="b", payload_bits=payload_bits)


def test_send_quiet_on_down_link_counts_refused():
    sim = Simulator(seed=0)
    link = Link(sim, rate_bps=1e6, name="t0")
    link.set_up(False)
    link.send_quiet(_message(sim))
    assert link.refused == 1
    assert link.dropped == 0


def test_offer_on_down_link_counts_refused():
    sim = Simulator(seed=0)
    link = Link(sim, rate_bps=1e6, name="t1")
    link.set_up(False)
    assert link.offer(1000.0) is None
    assert link.refused == 1


def test_lost_messages_count_dropped_not_refused():
    sim = Simulator(seed=0)
    link = Link(sim, rate_bps=1e6, loss=0.999999, name="t2")
    for _ in range(5):
        link.send_quiet(_message(sim))
    assert link.dropped == 5
    assert link.refused == 0


def test_drops_emit_net_trace_events_and_metrics():
    tracer = Tracer(("net",))
    with active(tracer):
        sim = Simulator(seed=0)
        link = Link(sim, rate_bps=1e6, name="t3")
        link.set_up(False)
        link.send_quiet(_message(sim))
        link.set_up(True)
        lossy = Link(sim, rate_bps=1e6, loss=0.999999, name="t4")
        lossy.send_quiet(_message(sim))
    events = [(ev[1], ev[2], ev[3]) for ev in tracer.events()]
    reasons = [fields["reason"] for cat, name, fields in events
               if name == "dropped"]
    assert reasons == ["down", "loss"]
    snapshot = tracer.metrics.snapshot()
    assert snapshot["counters"]["link.refused"] == 1
    assert snapshot["counters"]["link.dropped"] == 1


def test_send_with_fail_on_loss_fails_event_and_counts():
    sim = Simulator(seed=0)
    link = Link(sim, rate_bps=1e6, loss=0.999999, name="t5")
    ev = link.send(_message(sim), fail_on_loss=True)
    with pytest.raises(Exception):
        sim.run_until_event(ev, limit=10.0)
    assert link.dropped == 1
