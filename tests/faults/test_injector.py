"""Injector wiring: target checks, jitter determinism, empty plans."""

import pytest

from repro.core.system import OddCISystem
from repro.errors import FaultPlanError
from repro.faults import (
    FaultInjector,
    FaultTargets,
    active_plan,
    parse_fault_plan,
)
from repro.sim.core import Simulator


def test_missing_target_fails_fast():
    sim = Simulator(seed=0)
    plan = parse_fault_plan("controller_crash@10,dur=5")
    with pytest.raises(FaultPlanError, match="controller"):
        FaultInjector(sim, plan, FaultTargets())


def test_carousel_interrupt_accepts_broadcast_fallback_target():
    sim = Simulator(seed=0)
    plan = parse_fault_plan("carousel_interrupt@10,mag=2")

    class FakeBroadcast:
        up = True

        def set_up(self, up):
            self.up = up

    FaultInjector(sim, plan, FaultTargets(broadcast=FakeBroadcast()))


def test_past_fire_time_rejected():
    sim = Simulator(seed=0)
    sim.run(until=50.0)
    plan = parse_fault_plan("broadcast_outage@10,dur=5")

    class FakeBroadcast:
        up = True

        def set_up(self, up):
            self.up = up

    with pytest.raises(FaultPlanError, match="before"):
        FaultInjector(sim, plan, FaultTargets(broadcast=FakeBroadcast()))


def test_jittered_times_are_seed_deterministic():
    def jitter_times(seed):
        sim = Simulator(seed=seed)
        plan = parse_fault_plan(
            "broadcast_outage@10,dur=5,jitter=20;"
            "broadcast_outage@100,dur=5,jitter=20")

        class FakeBroadcast:
            up = True

            def set_up(self, up):
                self.up = up

        injector = FaultInjector(sim, plan, FaultTargets(
            broadcast=FakeBroadcast()))
        sim.run(until=200.0)
        return tuple(t for t, _ in injector.fired)

    assert jitter_times(7) == jitter_times(7)
    assert jitter_times(7) != jitter_times(8)


def test_empty_plan_never_wires_an_injector():
    plan = parse_fault_plan("none")
    with active_plan(plan if plan.events else None):
        system = OddCISystem(seed=0)
    assert system.fault_injector is None


def test_ambient_plan_wires_system_injector():
    with active_plan(parse_fault_plan("broadcast_outage@10,dur=5")):
        system = OddCISystem(seed=0)
    assert system.fault_injector is not None
    system.sim.run(until=8.0)
    assert system.broadcast.up
    system.sim.run(until=12.0)
    assert not system.broadcast.up
    system.sim.run(until=20.0)
    assert system.broadcast.up
    assert system.fault_injector.fired == [(10.0, "broadcast_outage")]
