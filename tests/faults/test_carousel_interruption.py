"""Carousel interruption: gaps on the cycle grid, PNA re-join, and the
acceptance-criteria 'blackout' plan on the DTV system."""

import pytest

from repro.dtv_oddci import OddCIDTVSystem
from repro.errors import CarouselError
from repro.faults import active_plan, parse_fault_plan
from repro.workloads import uniform_bag


def dtv_system(plan=None, seed=0, receivers=8):
    with active_plan(plan):
        system = OddCIDTVSystem(seed=seed, maintenance_interval_s=20.0,
                                beta_bps=1_000_000.0)
    system.add_receivers(receivers, heartbeat_interval_s=10.0,
                         dve_poll_interval_s=5.0)
    system.sim.run(until=30.0)  # Xlets autostart
    return system


def test_interrupt_for_validates():
    system = dtv_system()
    carousel = system.control_plane.carousel
    with pytest.raises(CarouselError):
        carousel.interrupt_for(0)
    with pytest.raises(CarouselError):
        carousel.interrupt_for(-3)


def test_interrupted_carousel_skips_cycles_then_resumes():
    plan = parse_fault_plan("carousel_interrupt@40,mag=3")
    system = dtv_system(plan=plan)
    carousel = system.control_plane.carousel
    cycle = carousel._cycle_time
    system.sim.run(until=40.0 + 5 * cycle)
    assert carousel.cycles_skipped == 3
    assert system.fault_injector.fired == [(40.0, "carousel_interrupt")]
    # Transmission resumed: the cycle counter keeps growing after the gap.
    before = carousel.cycles_completed
    system.sim.run(until=system.sim.now + 3 * cycle)
    assert carousel.cycles_completed > before


def test_blackout_plan_completes_workload():
    """Acceptance criteria: controller crash + carousel interruption;
    the job still completes, nothing hangs, MTTR is recorded."""
    plan = parse_fault_plan("blackout")
    system = dtv_system(plan=plan, seed=2, receivers=10)
    job = uniform_bag(24, image_bits=2e6, ref_seconds=20.0)
    submission = system.provider.submit_job(
        job, target_size=6, heartbeat_interval_s=10.0, lease_factor=3.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e6)
    assert report.n_tasks == 24
    controller = system.controller
    assert controller.counters["crashes"] == 1
    assert controller.alive
    assert len(controller.mttr_history) >= 1
    kinds = [kind for _, kind in system.fault_injector.fired]
    assert kinds[:2] == ["controller_crash", "carousel_interrupt"]


def test_gap_stays_on_cycle_grid():
    """Post-gap transmissions land on the same cycle grid a
    never-interrupted carousel would use (byte-parity of reader
    wakeups)."""
    plain = dtv_system(seed=5)
    faulted = dtv_system(
        plan=parse_fault_plan("carousel_interrupt@40,mag=2"), seed=5)
    for system in (plain, faulted):
        system.sim.run(until=200.0)
    c_plain = plain.control_plane.carousel
    c_fault = faulted.control_plane.carousel
    assert c_fault.cycles_skipped == 2
    # Completed + skipped on the faulted side lines up with the plain
    # side's completed count: the grid itself never shifted.
    assert (c_fault.cycles_completed + c_fault.cycles_skipped
            == c_plain.cycles_completed)
