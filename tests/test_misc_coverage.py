"""Focused tests for small corners not covered elsewhere."""

import numpy as np
import pytest

from repro.core import OddCISystem
from repro.net import DEFAULT_HEADER_BITS, Link, Message
from repro.sim import Simulator, derive_generator, derive_seed
from repro.sim.rng import stream_entropy
from repro.workloads import uniform_bag


# -- RNG derivation ---------------------------------------------------------

def test_stream_entropy_stable_and_distinct():
    assert stream_entropy("alpha") == stream_entropy("alpha")
    assert stream_entropy("alpha") != stream_entropy("beta")


def test_derive_generator_with_none_master_still_salted():
    # None master = OS entropy; two streams must still differ.
    a = derive_generator(None, "x").random(4)
    b = derive_generator(None, "y").random(4)
    assert not np.allclose(a, b)


def test_derive_seed_reproducible():
    s1 = derive_seed(42, "stream")
    s2 = derive_seed(42, "stream")
    g1 = np.random.Generator(np.random.PCG64(s1))
    g2 = np.random.Generator(np.random.PCG64(s2))
    assert g1.random(8).tolist() == g2.random(8).tolist()


def test_huge_master_seed_wrapped():
    gen = derive_generator(2 ** 200, "s")  # must not raise
    assert 0.0 <= gen.random() < 1.0


# -- link internals -----------------------------------------------------------

def test_link_utilization_horizon_advances_with_queue():
    sim = Simulator()
    link = Link(sim, rate_bps=1000.0)
    assert link.utilization_horizon == sim.now
    link.send(Message(payload_bits=1000.0 - DEFAULT_HEADER_BITS))
    link.send(Message(payload_bits=1000.0 - DEFAULT_HEADER_BITS))
    assert link.utilization_horizon == pytest.approx(2.0)
    sim.run()


def test_link_down_does_not_lose_serializer_state():
    sim = Simulator()
    link = Link(sim, rate_bps=1e6)
    link.set_up(False)
    link.set_up(True)
    ev = link.send(Message(payload_bits=100))
    sim.run_until_event(ev)
    assert link.delivered == 1


# -- controller size history ------------------------------------------------------

def test_controller_records_size_history():
    system = OddCISystem(seed=2, maintenance_interval_s=20.0)
    system.add_pnas(6, heartbeat_interval_s=10.0, dve_poll_interval_s=5.0)
    job = uniform_bag(10_000, image_bits=1e6, ref_seconds=300.0)
    submission = system.provider.submit_job(job, target_size=6,
                                            heartbeat_interval_s=10.0)
    system.sim.run(until=300.0)
    history = system.controller.size_history[submission.instance_id]
    assert len(history) >= 2
    assert history.last() == 6
    assert history.max() <= 6
    # time-average is meaningful (between 0 and target)
    assert 0 < history.time_average() <= 6


# -- provider edge cases -------------------------------------------------------------

def test_release_unknown_instance_raises():
    from repro.errors import InstanceError

    system = OddCISystem(seed=1)
    with pytest.raises(InstanceError):
        system.provider.release("nope")


def test_status_unknown_instance_raises():
    from repro.errors import ProvisioningError

    system = OddCISystem(seed=1)
    with pytest.raises(ProvisioningError):
        system.provider.status("nope")


def test_add_pnas_validation():
    from repro.errors import ConfigurationError

    system = OddCISystem(seed=1)
    with pytest.raises(ConfigurationError):
        system.add_pnas(0)


def test_system_validation():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        OddCISystem(delta_bps=0)
    with pytest.raises(ConfigurationError):
        OddCISystem(delta_latency_s=-1)
