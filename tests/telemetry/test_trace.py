"""Tracer semantics: category enablement, ring buffer, ambient install."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.trace import (
    CATEGORIES,
    DEFAULT_CATEGORIES,
    Tracer,
    active,
    channel,
    current,
    install,
    parse_categories,
    uninstall,
)


class TestParseCategories:
    def test_default_excludes_kernel_firehose(self):
        assert parse_categories(None) == DEFAULT_CATEGORIES
        assert parse_categories("default") == DEFAULT_CATEGORIES
        assert "kernel" not in DEFAULT_CATEGORIES

    def test_all_is_every_category(self):
        assert parse_categories("all") == CATEGORIES

    def test_comma_list_canonical_order(self):
        # Spec order does not matter; canonical order comes back.
        assert parse_categories("pna, control") == ("control", "pna")
        assert parse_categories(["backend", "kernel"]) == (
            "kernel", "backend")

    def test_unknown_category_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_categories("control,typo")
        with pytest.raises(ConfigurationError):
            parse_categories("")


class TestTracer:
    def test_enabled_channel_collects_events(self):
        tracer = Tracer("control,pna")
        ch = tracer.channel("control")
        ch.emit(1.5, "wakeup_publish", instance="oddci-1")
        ch.emit(2.0, "reset_publish")
        assert tracer.events() == [
            (1.5, "control", "wakeup_publish", {"instance": "oddci-1"}),
            (2.0, "control", "reset_publish", None),
        ]
        assert tracer.emitted == len(tracer) == 2
        assert tracer.dropped == 0

    def test_disabled_category_has_no_channel(self):
        tracer = Tracer("control")
        assert tracer.channel("kernel") is None
        assert tracer.channel("backend") is None

    def test_ring_keeps_newest_and_counts_drops(self):
        tracer = Tracer("runner", ring=3)
        ch = tracer.channel("runner")
        for i in range(10):
            ch.emit(float(i), "tick")
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert tracer.dropped == 7
        assert [ev[0] for ev in tracer.events()] == [7.0, 8.0, 9.0]

    def test_bad_ring_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer("runner", ring=0)

    def test_clear_resets_counts(self):
        tracer = Tracer("runner")
        tracer.channel("runner").emit(0.0, "x")
        tracer.clear()
        assert tracer.events() == [] and tracer.emitted == 0

    def test_channel_metric_shortcuts_share_registry(self):
        tracer = Tracer("control")
        ch = tracer.channel("control")
        ch.counter("census.heartbeats").inc(5)
        ch.gauge("fleet.size").set(42)
        ch.histogram("delivery.batch_size").observe(3)
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["census.heartbeats"] == 5
        assert snap["gauges"]["fleet.size"] == 42
        assert snap["histograms"]["delivery.batch_size"]["count"] == 1


class TestAmbientInstall:
    def test_channel_is_none_without_tracer(self):
        assert current() is None
        assert channel("control") is None

    def test_install_uninstall(self):
        tracer = install(Tracer("control"))
        assert current() is tracer
        assert channel("control") is tracer.channel("control")
        assert channel("backend") is None  # not enabled
        uninstall()
        assert channel("control") is None

    def test_install_rejects_non_tracer(self):
        with pytest.raises(ConfigurationError):
            install("not a tracer")

    def test_active_restores_previous(self):
        outer, inner = Tracer("pna"), Tracer("backend")
        with active(outer):
            assert current() is outer
            with active(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None
