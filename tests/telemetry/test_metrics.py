"""Metrics registry: series keys, snapshots, cross-worker merging."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    series_key,
)


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("census.heartbeats") == "census.heartbeats"

    def test_labels_sorted(self):
        assert series_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"
        assert series_key("x", {"a": 1, "b": 2}) == "x{a=1,b=2}"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            series_key("")


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", instance="a")
        c.inc()
        c.value += 2  # hot-path direct bump
        assert reg.counter("hits", instance="a") is c
        assert reg.counter("hits", instance="b") is not c
        assert reg.snapshot()["counters"]["hits{instance=a}"] == 3

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("size")
        g.set(3)
        g.set(7)
        assert reg.snapshot()["gauges"]["size"] == 7

    def test_histogram_bucketing(self):
        h = Histogram(bounds=(1, 10, 100))
        for v in (0.5, 1, 2, 10, 11, 1000):
            h.observe(v)
        snap = MetricsRegistry._histogram_snapshot(h)
        assert snap["count"] == 6
        assert snap["total"] == pytest.approx(1024.5)
        assert snap["buckets"] == {"le_1": 2, "le_10": 2, "le_100": 1,
                                   "inf": 1}

    def test_histogram_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram(bounds=())
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(5, 5))
        with pytest.raises(ConfigurationError):
            Histogram(bounds=(10, 1))

    def test_histogram_reregister_same_buckets_ok(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 2))
        assert reg.histogram("lat", buckets=(1, 2)) is h
        with pytest.raises(ConfigurationError):
            reg.histogram("lat", buckets=(1, 3))

    def test_snapshot_bytes_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(2)
            reg.counter("a").inc(1)
            reg.histogram("h", buckets=(1, 2)).observe(1.5)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()


class TestMergeSnapshots:
    def test_counters_add_gauges_update(self):
        a = {"counters": {"hits": 2}, "gauges": {"size": 1},
             "histograms": {}}
        b = {"counters": {"hits": 3, "miss": 1}, "gauges": {"size": 9},
             "histograms": {}}
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"hits": 5, "miss": 1}
        assert merged["gauges"] == {"size": 9}

    def test_histograms_add(self):
        h1 = {"count": 2, "total": 3.0, "buckets": {"le_1": 1, "inf": 1}}
        h2 = {"count": 1, "total": 0.5, "buckets": {"le_1": 1, "inf": 0}}
        merged = merge_snapshots({"histograms": {"h": h1}},
                                 {"histograms": {"h": h2}})
        assert merged["histograms"]["h"] == {
            "count": 3, "total": 3.5, "buckets": {"le_1": 2, "inf": 1}}
        # Inputs are not mutated.
        assert h1["count"] == 2 and h2["count"] == 1

    def test_histogram_bucket_mismatch_rejected(self):
        h1 = {"count": 1, "total": 1.0, "buckets": {"le_1": 1}}
        h2 = {"count": 1, "total": 1.0, "buckets": {"le_2": 1}}
        with pytest.raises(ConfigurationError):
            merge_snapshots({"histograms": {"h": h1}},
                            {"histograms": {"h": h2}})

    def test_empty_base(self):
        snap = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        assert merge_snapshots({}, snap) == snap

    def test_point_order_associativity(self):
        snaps = [
            {"counters": {"x": i}, "gauges": {"g": i}, "histograms": {}}
            for i in range(1, 5)
        ]
        left = {}
        for s in snaps:
            left = merge_snapshots(left, s)
        # Fold of the first three, then the fourth — same result.
        head = {}
        for s in snaps[:3]:
            head = merge_snapshots(head, s)
        assert merge_snapshots(head, snaps[3]) == left
        assert left["counters"]["x"] == 10
        assert left["gauges"]["g"] == 4
