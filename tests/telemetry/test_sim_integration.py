"""Instrumentation wiring: components emit iff their category is enabled.

Components resolve their trace channel at construction time, so every
test builds its simulator/system *inside* ``active(tracer)``.
"""

from repro.carousel.carousel import ObjectCarousel
from repro.carousel.objects import CarouselFile
from repro.core import OddCISystem
from repro.net.broadcast import BroadcastChannel
from repro.sim.core import Simulator
from repro.sim.wheel import TimerWheel
from repro.telemetry.trace import Tracer, active
from repro.workloads import uniform_bag


def _names(tracer, category):
    return [ev[2] for ev in tracer.events() if ev[1] == category]


class TestKernelChannel:
    def test_dispatch_events_and_path_counters(self):
        tracer = Tracer("kernel")
        with active(tracer):
            sim = Simulator(seed=1)

            def tick():
                pass

            sim.schedule_fast(1.0, tick)       # fast path
            sim.call_at(2.0, tick)             # fast path
            sim.schedule_at(3.0, tick)         # handle path
            sim.run(until=10.0)
        snap = tracer.metrics.snapshot()["counters"]
        assert snap["kernel.fast_path_scheduled"] == 2
        assert snap["kernel.handle_path_scheduled"] == 1
        dispatches = [ev for ev in tracer.events() if ev[2] == "dispatch"]
        assert len(dispatches) == 3
        assert all(ev[3]["fn"].endswith("tick") for ev in dispatches)
        assert [ev[0] for ev in dispatches] == [1.0, 2.0, 3.0]

    def test_kernel_channel_chains_user_trace_hook(self):
        # A user trace callback passed at construction keeps firing
        # alongside the telemetry dispatch hook.
        tracer = Tracer("kernel")
        seen = []
        with active(tracer):
            sim = Simulator(seed=1,
                            trace=lambda t, cb, args: seen.append(t))
            sim.schedule_fast(1.0, lambda: None)
            sim.run(until=2.0)
        assert seen == [1.0]
        assert any(ev[2] == "dispatch" for ev in tracer.events())

    def test_disabled_means_no_kernel_state(self):
        with active(Tracer("control")):  # kernel NOT enabled
            sim = Simulator(seed=1)
        assert sim._ktrace is None and sim._kfast is None
        sim2 = Simulator(seed=1)  # no tracer at all
        assert sim2._ktrace is None and sim2._kfast is None

    def test_wheel_flush_events(self):
        tracer = Tracer("kernel")
        with active(tracer):
            sim = Simulator(seed=1)
            wheel = TimerWheel(sim, 5.0, name="hb")
            wheel.subscribe(lambda t: None)
            wheel.subscribe(lambda t: None)
            sim.run(until=16.0)
        flushes = [ev for ev in tracer.events() if ev[2] == "wheel_flush"]
        assert [ev[0] for ev in flushes] == [5.0, 10.0, 15.0]
        assert all(ev[3] == {"wheel": "hb", "subscribers": 2}
                   for ev in flushes)


class TestCarouselChannel:
    @staticmethod
    def _build(sim, fast_forward):
        channel = BroadcastChannel(sim, beta_bps=1e6, name="bcast")
        files = [CarouselFile(name="a.bin", size_bits=1e5),
                 CarouselFile(name="b.bin", size_bits=2e5)]
        return ObjectCarousel(sim, channel, files, fast_forward=fast_forward)

    def test_cycle_and_transmit_events(self):
        tracer = Tracer("carousel")
        with active(tracer):
            sim = Simulator(seed=1)
            carousel = self._build(sim, fast_forward=False)
            sim.run(until=1.0)
        names = _names(tracer, "carousel")
        assert names.count("cycle_start") >= 2
        transmits = [ev for ev in tracer.events() if ev[2] == "transmit"]
        assert {ev[3]["file"] for ev in transmits} == {"a.bin", "b.bin"}
        assert carousel.cycles_completed >= 2

    def test_fast_forward_park_wake_replay(self):
        tracer = Tracer("carousel")
        with active(tracer):
            sim = Simulator(seed=1)
            carousel = self._build(sim, fast_forward=True)
            sim.schedule_at(10.0, lambda: carousel.read("b.bin"))
            sim.run(until=12.0)
        names = _names(tracer, "carousel")
        assert "park" in names and "wake" in names
        wake = next(ev for ev in tracer.events() if ev[2] == "wake")
        assert wake[3]["virtual_cycles"] >= 1


class TestSystemChannels:
    def test_control_pna_backend_events_in_job_cycle(self):
        tracer = Tracer("control,pna,backend")
        with active(tracer):
            system = OddCISystem(seed=3, maintenance_interval_s=60.0)
            system.add_pnas(4, heartbeat_interval_s=10.0,
                            dve_poll_interval_s=5.0)
            job = uniform_bag(8, image_bits=1e6, ref_seconds=5.0)
            submission = system.provider.submit_job(job, target_size=4)
            system.provider.run_job_to_completion(submission, limit_s=1e6)
            # Let heartbeat ticks and a maintenance round go by.
            system.sim.run(until=system.sim.now + 120.0)
        control = _names(tracer, "control")
        assert "wakeup_publish" in control
        assert "heartbeat_batch" in control
        assert "maintenance_round" in control
        pna = _names(tracer, "pna")
        assert "accept" in pna
        backend = _names(tracer, "backend")
        assert backend.count("dispatch") >= 8
        assert backend.count("complete") == 8
        assert "job_done" in backend
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["census.heartbeats"] > 0
        # kernel disabled: no kernel events leaked in.
        assert not [ev for ev in tracer.events() if ev[1] == "kernel"]

    def test_untraced_system_emits_nothing(self):
        tracer = Tracer("all")
        # Built OUTSIDE active(): constructors resolve no channels.
        system = OddCISystem(seed=3, maintenance_interval_s=60.0)
        system.add_pnas(2, heartbeat_interval_s=10.0)
        with active(tracer):
            system.sim.run(until=50.0)
        assert tracer.events() == []
