"""Telemetry-test hygiene: never leak an ambient tracer across tests."""

import pytest

from repro.telemetry import trace as trace_mod


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    trace_mod.uninstall()
    yield
    trace_mod.uninstall()
