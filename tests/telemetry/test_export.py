"""Exporter round trips: JSONL <-> events, Chrome trace_event, summary."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.export import (
    chrome_trace,
    dumps_jsonl,
    main,
    obj_to_event,
    read_jsonl,
    summarize,
)

EVENTS = [
    (0.0, "runner", "run_start", {"scenario": "a3", "seed": 7}),
    (0.0, "runner", "point_start", {"index": 0}),
    (1.25, "control", "wakeup_publish", {"instance": "oddci-1"}),
    (2.5, "pna", "accept", {"pna": "pna-3", "instance": "oddci-1"}),
    (3.0, "backend", "complete", None),
    (0.0, "runner", "point_start", {"index": 1}),
    (0.5, "kernel", "wheel_flush", {"wheel": "hb", "subscribers": 4}),
]


class TestJsonlRoundTrip:
    def test_read_inverts_dumps(self):
        assert read_jsonl(dumps_jsonl(EVENTS).splitlines()) == EVENTS

    def test_equal_events_equal_bytes(self):
        again = [tuple(ev) for ev in EVENTS]
        assert dumps_jsonl(EVENTS) == dumps_jsonl(again)

    def test_lines_are_compact_and_key_sorted(self):
        line = dumps_jsonl(EVENTS[:1]).strip()
        assert ": " not in line and ", " not in line
        obj = json.loads(line)
        assert list(obj) == sorted(obj)

    def test_empty(self):
        assert dumps_jsonl([]) == ""
        assert read_jsonl([]) == []
        assert read_jsonl(["", "  "]) == []

    def test_malformed_line_rejected(self):
        with pytest.raises(ConfigurationError):
            obj_to_event({"cat": "pna"})  # missing keys


class TestChromeTrace:
    def test_instants_microseconds_and_tids(self):
        doc = chrome_trace(EVENTS)
        tes = doc["traceEvents"]
        assert len(tes) == len(EVENTS)
        wakeup = tes[2]
        assert wakeup["ph"] == "i" and wakeup["s"] == "t"
        assert wakeup["ts"] == pytest.approx(1.25e6)
        assert wakeup["cat"] == "control"
        assert wakeup["args"] == {"instance": "oddci-1"}
        # Distinct categories get distinct tid rows.
        assert len({te["tid"] for te in tes}) == len(
            {te["cat"] for te in tes})

    def test_point_start_advances_pid(self):
        doc = chrome_trace(EVENTS)
        pids = [te["pid"] for te in doc["traceEvents"]]
        # run_start in pid 0; point 0's events in pid 1; point 1's in 2.
        assert pids[0] == 0
        assert pids[1:5] == [1, 1, 1, 1]
        assert pids[5:] == [2, 2]


class TestSummarize:
    def test_counts_and_metrics_digest(self):
        metrics = {"counters": {"census.heartbeats": 12}, "gauges": {},
                   "histograms": {"h": {"count": 2, "total": 5.0,
                                        "buckets": {"inf": 2}}}}
        text = summarize(EVENTS, metrics)
        assert f"trace: {len(EVENTS)} events" in text
        assert "control" in text and "pna/accept" in text
        assert "census.heartbeats = 12" in text
        assert "count=2 mean=2.5" in text

    def test_empty_trace(self):
        assert summarize([]) == "trace: no events"


class TestCliEntry:
    def test_main_summarises_and_converts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text(dumps_jsonl(EVENTS))
        (tmp_path / "metrics.json").write_text(json.dumps(
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}}))
        chrome_out = tmp_path / "chrome.json"
        assert main([str(trace_path), "--chrome", str(chrome_out)]) == 0
        out = capsys.readouterr().out
        assert f"trace: {len(EVENTS)} events" in out
        assert "x = 1" in out  # sibling metrics.json picked up
        doc = json.loads(chrome_out.read_text())
        assert len(doc["traceEvents"]) == len(EVENTS)
