"""OddCI-DTV under churn: receivers power-cycle, Xlets reload from the
carousel, the Controller recomposes — the full Section 4 stack."""

import pytest

from repro.dtv_oddci import OddCIDTVSystem
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.workloads import ChurnModel, uniform_bag


def build(churn=None, n=10):
    system = OddCIDTVSystem(beta_bps=4_000_000.0, seed=23,
                            maintenance_interval_s=60.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(n, heartbeat_interval_s=30.0,
                         dve_poll_interval_s=10.0, churn=churn)
    return system


def test_churned_population_fluctuates_online_count():
    churn = ChurnModel(mean_on_s=300.0, mean_off_s=300.0)
    system = build(churn=churn, n=20)
    system.sim.run(until=2000.0)
    online = system.online_count()
    # steady state ~50% powered; Xlet startup lag keeps it strictly
    # below the full population.
    assert 2 <= online <= 18


def test_job_completes_under_dtv_churn():
    churn = ChurnModel(mean_on_s=1200.0, mean_off_s=300.0,
                       initial_on_probability=1.0)
    system = build(churn=churn, n=10)
    system.sim.run(until=60.0)
    job = uniform_bag(20, image_bits=MEGABYTE, ref_seconds=1.0)
    submission = system.provider.submit_job(
        job, target_size=8, heartbeat_interval_s=30.0, lease_factor=0.5)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    assert report.n_tasks == 20


def test_without_churn_population_is_stable():
    system = build(churn=None, n=6)
    system.sim.run(until=1000.0)
    assert system.online_count() == 6


def test_returning_receiver_sees_current_wakeup_via_carousel():
    """A box that powers on *after* the wakeup was published still joins:
    the carousel's cyclic config file delivers the control message."""
    system = build(n=6)
    system.sim.run(until=60.0)
    from repro.workloads import PowerMode

    late = system.boxes[0]
    late.set_mode(PowerMode.OFF)
    job = uniform_bag(50_000, image_bits=MEGABYTE, ref_seconds=500.0)
    system.provider.submit_job(job, target_size=6,
                               heartbeat_interval_s=30.0)
    system.sim.run(until=200.0)
    assert system.busy_count() == 5  # one box missing
    late.set_mode(PowerMode.IN_USE)
    system.sim.run(until=500.0)
    # The late box reloads the PNA Xlet, reads the config file from the
    # carousel and joins the instance without any retransmission.
    late_pna = system.pna_of(late)
    assert late_pna.online
    assert late_pna.instance_id is not None
    assert system.busy_count() == 6
