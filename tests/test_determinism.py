"""Whole-system determinism: identical seeds reproduce identical runs.

Reproducibility is a first-class requirement for a simulation library —
every stochastic choice flows from named RNG streams derived from the
simulator seed, so re-running any experiment with the same seed must
give bit-identical results.
"""

import numpy as np
import pytest

from repro.core import OddCISystem
from repro.dtv_oddci import OddCIDTVSystem
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.vector import VectorOddCI, VectorPopulation
from repro.workloads import uniform_bag


def run_generic(seed):
    system = OddCISystem(seed=seed, maintenance_interval_s=30.0)
    system.add_pnas(10, heartbeat_interval_s=15.0, dve_poll_interval_s=5.0)
    job = uniform_bag(60, image_bits=MEGABYTE, ref_seconds=7.0)
    submission = system.provider.submit_job(job, target_size=10)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    return (report.makespan, report.tasks_assigned,
            report.distinct_workers, system.sim.events_executed)


def run_dtv(seed):
    system = OddCIDTVSystem(seed=seed, maintenance_interval_s=100.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(5, heartbeat_interval_s=40.0,
                         dve_poll_interval_s=10.0, in_use_fraction=0.5)
    system.sim.run(until=30.0)
    job = uniform_bag(10, image_bits=MEGABYTE, ref_seconds=2.0)
    submission = system.provider.submit_job(job, target_size=5,
                                            heartbeat_interval_s=40.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    return (report.makespan, system.sim.events_executed)


def run_vector(seed):
    pop = VectorPopulation(50_000, np.random.default_rng(seed))
    system = VectorOddCI(pop)
    job = uniform_bag(100_000, image_bits=8 * MEGABYTE, ref_seconds=30.0)
    result = system.run_job(job, target_size=10_000)
    return (result.recruited, result.wakeup_mean_s, result.makespan_s)


def test_generic_system_deterministic():
    assert run_generic(42) == run_generic(42)


def test_generic_system_seed_sensitivity():
    """With a sub-1 wakeup probability the accept/drop draws are live,
    so different seeds recruit different subsets."""
    from repro.core import FixedProbability

    def run(seed):
        system = OddCISystem(seed=seed, maintenance_interval_s=1e6,
                             probability_policy=FixedProbability(0.5))
        system.add_pnas(40, heartbeat_interval_s=1e5)
        job = uniform_bag(10, image_bits=1e5, ref_seconds=1e4)
        system.provider.submit_job(job, target_size=20)
        system.sim.run(until=50.0)
        return tuple(p.pna_id for p in system.pnas
                     if p.instance_id is not None)

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_dtv_system_deterministic():
    assert run_dtv(7) == run_dtv(7)


def test_vector_tier_deterministic():
    assert run_vector(3) == run_vector(3)
    assert run_vector(3) != run_vector(4)


def test_experiment_drivers_deterministic():
    from repro.experiments import run_fig6, run_wakeup_sweep

    a = run_wakeup_sweep(vector_nodes=5000, event_readers=10, seed=1)
    b = run_wakeup_sweep(vector_nodes=5000, event_readers=10, seed=1)
    assert a == b
    c = run_fig6(sim_nodes=50, sim_ratios=(10,), seed=2)
    d = run_fig6(sim_nodes=50, sim_ratios=(10,), seed=2)
    assert c == d
