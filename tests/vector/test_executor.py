"""Tests for the vectorised executors (waterfill vs heap agreement)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.vector import makespan_heap, makespan_waterfill, per_task_wall_seconds


def test_per_task_wall_seconds():
    # 1 KB over 150 kbps + 2 s compute * factor 20.6
    d = per_task_wall_seconds(2.0, 8192, 150_000.0, 20.6)
    assert d == pytest.approx(8192 / 150_000 + 41.2)
    with pytest.raises(AnalysisError):
        per_task_wall_seconds(0, 1, 1)
    with pytest.raises(AnalysisError):
        per_task_wall_seconds(1, -1, 1)
    with pytest.raises(AnalysisError):
        per_task_wall_seconds(1, 1, 1, device_factor=0)


def test_waterfill_single_node():
    out = makespan_waterfill(np.array([10.0]), 5, 2.0)
    assert out.finish_time == pytest.approx(20.0)
    assert out.tasks_per_node_max == 5


def test_waterfill_equal_ready_times_balances():
    out = makespan_waterfill(np.zeros(4), 8, 3.0)
    assert out.finish_time == pytest.approx(6.0)  # 2 tasks each
    assert out.tasks_per_node_max == 2


def test_waterfill_uneven_split():
    # 3 nodes, 7 tasks, d=1: two nodes get 2, one gets 3 -> finish 3.
    out = makespan_waterfill(np.zeros(3), 7, 1.0)
    assert out.finish_time == pytest.approx(3.0)
    assert out.tasks_per_node_max == 3


def test_waterfill_staggered_ready_times():
    # Node A ready at 0, node B at 10; 3 tasks of 4 s.
    # Greedy: A takes t0 (0-4), t1 (4-8), t2 (8-12); B would finish its
    # first task at 14 — so A does all three, finish 12.
    out = makespan_waterfill(np.array([0.0, 10.0]), 3, 4.0)
    assert out.finish_time == pytest.approx(12.0)


def test_waterfill_validation():
    with pytest.raises(AnalysisError):
        makespan_waterfill(np.array([]), 1, 1.0)
    with pytest.raises(AnalysisError):
        makespan_waterfill(np.zeros(2), 0, 1.0)
    with pytest.raises(AnalysisError):
        makespan_waterfill(np.zeros(2), 1, 0.0)


def test_heap_matches_manual_example():
    # Same staggered example as above.
    out = makespan_heap(np.array([0.0, 10.0]), [4.0, 4.0, 4.0])
    assert out.finish_time == pytest.approx(12.0)


def test_heap_heterogeneous_tasks():
    out = makespan_heap(np.zeros(2), [5.0, 1.0, 1.0, 1.0])
    # node0 takes 5s task; node1 takes three 1s tasks -> finish 5.
    assert out.finish_time == pytest.approx(5.0)
    assert out.tasks_per_node_max == 3


def test_heap_validation():
    with pytest.raises(AnalysisError):
        makespan_heap(np.array([]), [1.0])
    with pytest.raises(AnalysisError):
        makespan_heap(np.zeros(2), [])
    with pytest.raises(AnalysisError):
        makespan_heap(np.zeros(2), [0.0])


@given(
    n_nodes=st.integers(min_value=1, max_value=40),
    n_tasks=st.integers(min_value=1, max_value=200),
    d=st.floats(min_value=0.01, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=150, deadline=None)
def test_property_waterfill_equals_heap_on_identical_tasks(
        n_nodes, n_tasks, d, seed):
    rng = np.random.default_rng(seed)
    ready = rng.uniform(0.0, 50.0, size=n_nodes)
    wf = makespan_waterfill(ready, n_tasks, d)
    hp = makespan_heap(ready, np.full(n_tasks, d))
    assert wf.finish_time == pytest.approx(hp.finish_time, rel=1e-6)
    assert wf.tasks_per_node_max == hp.tasks_per_node_max or \
        abs(wf.tasks_per_node_max - hp.tasks_per_node_max) <= 1


@given(
    n_nodes=st.integers(min_value=1, max_value=30),
    n_tasks=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_property_makespan_monotone_in_tasks_and_nodes(n_nodes, n_tasks):
    ready = np.zeros(n_nodes)
    m1 = makespan_waterfill(ready, n_tasks, 1.0).finish_time
    m2 = makespan_waterfill(ready, n_tasks + 10, 1.0).finish_time
    assert m2 >= m1
    m3 = makespan_waterfill(np.zeros(n_nodes + 5), n_tasks, 1.0).finish_time
    assert m3 <= m1 + 1e-9


def test_waterfill_scales_to_a_million_nodes():
    rng = np.random.default_rng(0)
    ready = rng.uniform(0.0, 120.0, size=1_000_000)
    out = makespan_waterfill(ready, 10_000_000, 5.0)
    assert out.n_nodes == 1_000_000
    # 10 tasks per node on average at 5 s each: finish around 50-170 s.
    assert 50.0 < out.finish_time < 200.0
