"""Tests for VectorPopulation and the VectorOddCI pipeline."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.vector import VectorOddCI, VectorPopulation
from repro.workloads import REFERENCE_PC, REFERENCE_STB, uniform_bag
from repro.net.message import MEGABYTE


def make_pop(n=10_000, seed=0, **kwargs):
    return VectorPopulation(n, np.random.default_rng(seed), **kwargs)


# -- population ---------------------------------------------------------------

def test_population_census():
    pop = make_pop(n=100_000, powered_fraction=0.8, in_use_fraction=0.5)
    assert pop.n == 100_000
    assert 78_000 < pop.powered_count < 82_000
    assert pop.idle_count == pop.powered_count
    assert pop.busy_count == 0


def test_population_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        VectorPopulation(0, rng)
    with pytest.raises(ConfigurationError):
        VectorPopulation(10, rng, in_use_fraction=1.5)
    with pytest.raises(ConfigurationError):
        VectorPopulation(10, rng, powered_fraction=-0.1)


def test_recruit_probability_gate():
    pop = make_pop(n=100_000)
    recruited = pop.recruit(0.25)
    assert 23_000 < recruited.size < 27_000
    assert pop.busy_count == recruited.size
    assert pop.idle_count == pop.n - recruited.size


def test_recruit_excludes_busy_and_off():
    pop = make_pop(n=10_000, powered_fraction=0.5)
    first = pop.recruit(1.0)
    assert first.size == pop.powered_count
    second = pop.recruit(1.0)
    assert second.size == 0  # everyone eligible is busy


def test_recruit_respects_requirement_match_fraction():
    pop = make_pop(n=100_000, requirement_match_fraction=0.3)
    recruited = pop.recruit(1.0)
    assert 28_000 < recruited.size < 32_000


def test_recruit_validation():
    pop = make_pop(n=10)
    with pytest.raises(ConfigurationError):
        pop.recruit(0.0)
    with pytest.raises(ConfigurationError):
        pop.recruit(1.1)


def test_release_specific_and_all():
    pop = make_pop(n=1000)
    recruited = pop.recruit(1.0)
    pop.release(recruited[:100])
    assert pop.busy_count == recruited.size - 100
    pop.release()
    assert pop.busy_count == 0


def test_device_factors_match_modes():
    pop = make_pop(n=50_000, in_use_fraction=0.5)
    in_use_factor = REFERENCE_STB.factor.__self__.factor  # noqa: just use profile
    from repro.workloads import PowerMode

    f_use = REFERENCE_STB.factor(PowerMode.IN_USE)
    f_stb = REFERENCE_STB.factor(PowerMode.STANDBY)
    vals = set(np.unique(pop.device_factor).tolist())
    assert vals <= {f_use, f_stb}


# -- VectorOddCI ---------------------------------------------------------------

def test_run_job_basic():
    pop = make_pop(n=5000, seed=1)
    system = VectorOddCI(pop, beta_bps=1_000_000.0, delta_bps=150_000.0)
    job = uniform_bag(50_000, image_bits=10 * MEGABYTE, ref_seconds=60.0)
    result = system.run_job(job, target_size=1000)
    assert 900 < result.recruited < 1100
    assert result.makespan_s > result.wakeup_mean_s
    assert 0.0 < result.efficiency <= 1.0
    # nodes released afterwards
    assert pop.busy_count == 0


def test_wakeup_mean_close_to_1_5_I_over_beta():
    pop = make_pop(n=20_000, seed=2)
    system = VectorOddCI(pop, beta_bps=1_000_000.0)
    job = uniform_bag(100_000, image_bits=10 * MEGABYTE, ref_seconds=60.0)
    result = system.run_job(job, target_size=10_000)
    w_model = 1.5 * job.image_bits / 1_000_000.0
    # Xlet+config+overheads make the carousel slightly longer than I.
    assert result.wakeup_mean_s == pytest.approx(w_model, rel=0.1)


def test_efficiency_grows_with_phi():
    pop = make_pop(n=2000, seed=3)
    system = VectorOddCI(pop)
    from repro.workloads import bag_from_phi

    low = system.run_job(bag_from_phi(20_000, 10.0), target_size=200)
    pop2 = make_pop(n=2000, seed=3)
    system2 = VectorOddCI(pop2)
    high = system2.run_job(bag_from_phi(20_000, 10_000.0), target_size=200)
    assert high.efficiency > low.efficiency


def test_run_job_validation():
    pop = make_pop(n=100)
    system = VectorOddCI(pop)
    job = uniform_bag(10)
    with pytest.raises(ConfigurationError):
        system.run_job(job, target_size=0)
    pop.recruit(1.0)  # exhaust the population
    with pytest.raises(AnalysisError):
        system.run_job(job, target_size=10)


def test_invalid_channel_rates():
    pop = make_pop(n=10)
    with pytest.raises(ConfigurationError):
        VectorOddCI(pop, beta_bps=0)
    with pytest.raises(ConfigurationError):
        VectorOddCI(pop, delta_bps=0)


def test_heterogeneous_modes_use_bucketed_waterfill():
    pop = make_pop(n=3000, seed=4, in_use_fraction=0.5)
    system = VectorOddCI(pop)
    job = uniform_bag(30_000, image_bits=MEGABYTE, ref_seconds=10.0)
    result = system.run_job(job, target_size=1000)
    assert result.makespan_s > 0
    assert 0 < result.efficiency <= 1.0


def test_million_node_run_is_feasible():
    """Requirement I at the vector tier: 10^6 nodes end to end."""
    pop = make_pop(n=1_000_000, seed=5)
    system = VectorOddCI(pop)
    job = uniform_bag(4_000_000, image_bits=8 * MEGABYTE, ref_seconds=30.0)
    result = system.run_job(job, target_size=1_000_000)
    assert result.recruited > 900_000
    assert result.efficiency > 0.1
