"""Tests for churn-aware capacity at the vector tier."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.vector.churn import (
    effective_capacity,
    makespan_under_churn,
    on_session_survival,
    sample_session_survival,
)
from repro.vector.executor import makespan_waterfill
from repro.workloads import ChurnModel


MODEL = ChurnModel(mean_on_s=600.0, mean_off_s=300.0)


def test_survival_closed_form_matches_monte_carlo():
    rng = np.random.default_rng(0)
    for t in (0.0, 100.0, 600.0, 2000.0):
        analytic = on_session_survival(MODEL, t)
        sampled = sample_session_survival(MODEL, t, 200_000, rng)
        assert sampled == pytest.approx(analytic, abs=0.01)


def test_survival_boundaries_and_validation():
    assert on_session_survival(MODEL, 0.0) == 1.0
    assert on_session_survival(MODEL, 1e9) < 1e-6
    with pytest.raises(AnalysisError):
        on_session_survival(MODEL, -1.0)
    with pytest.raises(AnalysisError):
        sample_session_survival(MODEL, 1.0, 0, np.random.default_rng(0))


def test_effective_capacity_decays_to_steady_state():
    assert effective_capacity(MODEL, 0.0) == pytest.approx(1.0)
    long_run = effective_capacity(MODEL, 1e7)
    assert long_run == pytest.approx(MODEL.steady_state_availability,
                                     abs=1e-6)
    # Monotone decay toward a_inf from above.
    samples = [effective_capacity(MODEL, t) for t in (0, 60, 300, 3000)]
    assert samples == sorted(samples, reverse=True)
    with pytest.raises(AnalysisError):
        effective_capacity(MODEL, -1.0)


def test_no_churn_equals_waterfill():
    ready = np.zeros(10)
    base = makespan_waterfill(ready, 100, 5.0)
    churned = makespan_under_churn(ready, 100, 5.0, None)
    assert churned.finish_time == base.finish_time


def test_churn_inflates_makespan():
    ready = np.zeros(50)
    base = makespan_waterfill(ready, 5000, 5.0)
    churned = makespan_under_churn(ready, 5000, 5.0, MODEL)
    assert churned.finish_time > base.finish_time
    # Inflation bounded by the steady-state availability.
    a_inf = MODEL.steady_state_availability
    assert churned.finish_time < base.finish_time / a_inf * 1.2


def test_short_jobs_barely_affected():
    """A job much shorter than the mean ON session sees ~full capacity."""
    ready = np.zeros(100)
    base = makespan_waterfill(ready, 100, 1.0)  # ~1 s of work each
    churned = makespan_under_churn(ready, 100, 1.0, MODEL)
    assert churned.finish_time == pytest.approx(base.finish_time, rel=0.02)


def test_recomposition_lag_costs_more():
    ready = np.zeros(50)
    fast = makespan_under_churn(ready, 5000, 5.0, MODEL,
                                recomposition_lag_s=0.0)
    slow = makespan_under_churn(ready, 5000, 5.0, MODEL,
                                recomposition_lag_s=300.0)
    assert slow.finish_time >= fast.finish_time
    with pytest.raises(AnalysisError):
        makespan_under_churn(ready, 10, 1.0, MODEL,
                             recomposition_lag_s=-1.0)


def test_heavier_churn_hurts_more():
    ready = np.zeros(50)
    light = makespan_under_churn(
        ready, 5000, 5.0, ChurnModel(mean_on_s=3600, mean_off_s=60))
    heavy = makespan_under_churn(
        ready, 5000, 5.0, ChurnModel(mean_on_s=300, mean_off_s=600))
    assert heavy.finish_time > light.finish_time
