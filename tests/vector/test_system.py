"""VectorOddCISystem: multi-job submissions, faults, census, telemetry."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.faults import FaultEvent, FaultPlan, active_plan
from repro.net.message import MEGABYTE
from repro.telemetry import trace as telemetry
from repro.vector import VectorOddCISystem, VectorPopulation
from repro.workloads import BagSpec, uniform_bag, uniform_bag_spec


def make_system(n=2_000, seed=0, **kwargs):
    return VectorOddCISystem(n, seed=seed, **kwargs)


def make_job(n_tasks=4_000, ref_seconds=30.0):
    return uniform_bag(n_tasks, image_bits=4 * MEGABYTE,
                       ref_seconds=ref_seconds)


# -- construction -------------------------------------------------------------

def test_requires_population_or_n():
    with pytest.raises(ConfigurationError):
        VectorOddCISystem()
    with pytest.raises(ConfigurationError):
        VectorOddCISystem(100, heartbeat_interval_s=0.0)
    with pytest.raises(ConfigurationError):
        VectorOddCISystem(100, census_epochs=0)


def test_adopts_existing_population():
    pop = VectorPopulation(500, seed=3)
    system = VectorOddCISystem(population=pop)
    assert system.population is pop


def test_picks_up_ambient_fault_plan():
    plan = FaultPlan((FaultEvent("churn_storm", 100.0, duration_s=50.0,
                                 magnitude=0.2),), name="ambient")
    with active_plan(plan):
        system = make_system()
    assert system.plan is plan
    assert len(system.compiled.windows) == 1
    # An empty ambient plan means "no faults", not a plan of nothing.
    with active_plan(None):
        assert make_system().plan is None


# -- multi-job Provider semantics ---------------------------------------------

def test_sequential_jobs_share_clock_and_population():
    system = make_system()
    r1 = system.run_job(make_job(), target_size=1_000)
    r2 = system.run_job(make_job(), target_size=1_000)
    assert r1.job_index == 0 and r2.job_index == 1
    assert r1.submit_time == 0.0
    assert r2.submit_time == pytest.approx(r1.finish_time)
    assert system.now == pytest.approx(r2.finish_time)
    # Released between jobs: the second recruitment found a full pool.
    assert abs(r2.recruited - r1.recruited) < 0.2 * r1.recruited
    assert system.population.busy_count == 0
    assert system.reports == [r1, r2]


def test_run_jobs_helper_matches_sequential_calls():
    a = make_system(seed=11)
    reports = a.run_jobs([(make_job(), 800), (make_job(), 800)])
    b = make_system(seed=11)
    assert reports == [b.run_job(make_job(), 800),
                       b.run_job(make_job(), 800)]


def test_identical_seeds_are_identical_runs():
    r1 = make_system(seed=42).run_job(make_job(), target_size=1_000)
    r2 = make_system(seed=42).run_job(make_job(), target_size=1_000)
    assert r1 == r2


def test_target_size_validation():
    with pytest.raises(ConfigurationError):
        make_system().run_job(make_job(), target_size=0)


def test_no_idle_nodes_raises():
    system = make_system(n=100)
    system.population.recruit(1.0)  # exhaust the pool
    with pytest.raises(AnalysisError):
        system.run_job(make_job(), target_size=10)


def test_report_efficiency_and_availability_are_sane():
    report = make_system().run_job(make_job(), target_size=1_000)
    assert 0.0 < report.efficiency <= 1.0
    assert 0.0 < report.availability <= 1.0
    assert report.makespan_s > 0
    assert report.start_time == report.submit_time  # no blackout
    assert report.finish_time == pytest.approx(
        report.submit_time + report.makespan_s)


# -- BagSpec duck-typing ------------------------------------------------------

def test_bagspec_and_real_bag_produce_identical_reports():
    n_tasks = 4_000
    spec = uniform_bag_spec(n_tasks, image_bits=4 * MEGABYTE,
                            ref_seconds=30.0)
    assert isinstance(spec, BagSpec)
    bag = uniform_bag(n_tasks, image_bits=4 * MEGABYTE, ref_seconds=30.0,
                      input_bits=spec.input_bits,
                      result_bits=spec.result_bits)
    r_spec = make_system(seed=9).run_job(spec, target_size=1_000)
    r_bag = make_system(seed=9).run_job(bag, target_size=1_000)
    assert r_spec == r_bag


# -- faults -------------------------------------------------------------------

def test_recruitment_blackout_defers_start():
    plan = FaultPlan((FaultEvent("broadcast_outage", 0.0,
                                 duration_s=40.0),), name="blackout")
    report = make_system(plan=plan).run_job(make_job(), target_size=1_000)
    assert report.start_time == pytest.approx(40.0)
    assert report.submit_time == 0.0
    # The deferral is part of the submission's makespan.
    assert report.makespan_s == pytest.approx(
        report.finish_time - report.submit_time)


def test_churn_storm_stretches_makespan_and_costs_availability():
    clean = make_system(seed=5).run_job(make_job(), target_size=1_000)
    storm_at = clean.makespan_s / 3.0
    plan = FaultPlan((FaultEvent("churn_storm", storm_at,
                                 duration_s=clean.makespan_s / 4.0,
                                 magnitude=0.4),), name="storm")
    stormy = make_system(seed=5, plan=plan).run_job(
        make_job(), target_size=1_000)
    assert stormy.makespan_s > clean.makespan_s
    assert stormy.availability < clean.availability


def test_controller_crash_zeroes_availability_window():
    clean = make_system(seed=5).run_job(make_job(), target_size=1_000)
    plan = FaultPlan((FaultEvent("controller_crash", clean.makespan_s / 3,
                                 duration_s=clean.makespan_s / 4),),
                     name="crash")
    crashed = make_system(seed=5, plan=plan).run_job(
        make_job(), target_size=1_000)
    # Census reads zero for ~1/4 of the run: availability drops by
    # about that fraction, makespan is untouched (compute continues).
    assert crashed.makespan_s == pytest.approx(clean.makespan_s)
    assert crashed.availability < clean.availability - 0.15
    times = np.asarray(crashed.size_series.times)
    values = np.asarray(crashed.size_series.values)
    assert (values[(times >= clean.makespan_s / 3)
                   & (times < clean.makespan_s / 3
                      + clean.makespan_s / 4)] == 0).all()


def test_storm_after_finish_is_inert():
    clean = make_system(seed=5).run_job(make_job(), target_size=1_000)
    plan = FaultPlan((FaultEvent("churn_storm",
                                 clean.makespan_s + 1_000.0,
                                 duration_s=100.0, magnitude=0.5),),
                     name="late")
    late = make_system(seed=5, plan=plan).run_job(
        make_job(), target_size=1_000)
    assert late.makespan_s == pytest.approx(clean.makespan_s)
    assert late.availability == pytest.approx(clean.availability)


# -- census & telemetry -------------------------------------------------------

def test_census_gauges_reflect_fleet_after_run():
    system = make_system()
    report = system.run_job(make_job(), target_size=1_000)
    assert report.census["registry_size"] == report.recruited
    assert report.census["alive"] == report.recruited
    gauges = system.census.consolidate(system.now)
    assert gauges["idle"] == report.recruited  # released at finish


def test_trace_and_metrics_emitted_under_active_tracer():
    with telemetry.active(telemetry.Tracer("vector")) as tracer:
        system = make_system()
        system.run_job(make_job(), target_size=1_000)
    names = [name for _t, _cat, name, _fields in tracer.events()]
    assert "submit" in names and "recruit" in names
    assert "census_epoch" in names and "finish" in names
    assert tracer.metrics.counter("census.heartbeats").value > 0


def test_fault_counters_track_windows():
    plan = FaultPlan((FaultEvent("churn_storm", 10.0, duration_s=20.0,
                                 magnitude=0.2),), name="counted")
    with telemetry.active(telemetry.Tracer("vector")) as tracer:
        system = make_system(plan=plan)
        system.run_job(make_job(), target_size=1_000)
    assert tracer.metrics.counter("fault.injected").value == 1
    assert tracer.metrics.counter("fault.restored").value == 1
