PYTHON ?= python
export PYTHONPATH := src

.PHONY: test experiments bench bench-quick bench-floor trace-demo \
	faults-smoke federation-smoke serve-smoke certify-smoke vector-smoke

test:
	$(PYTHON) -m pytest -x -q

# Every registered scenario at smoke scale through the parallel runner
# (tier-2 'experiments' marker; excluded from the default test run).
experiments:
	$(PYTHON) -m pytest tests/experiments/test_smoke_all.py -q \
		--run-experiments

# Full perf harness: event-tier families (BENCH_event_tier.json) plus
# the census consolidation family (BENCH_census.json) and the Backend
# dispatch-tier family (BENCH_dispatch.json).  Wall numbers are
# machine-dependent — see DESIGN.md §8 for the interleaved
# before/after measurement protocol, §11 for the census engine and
# §12 for the cohort task path ("repro bench --profile" prints
# cProfile hot spots without touching the tracked artifacts).
bench:
	$(PYTHON) -m repro bench
	$(PYTHON) -m repro bench --census
	$(PYTHON) -m repro bench --dispatch
	$(PYTHON) -m repro bench --federation

bench-quick:
	$(PYTHON) -m repro bench --scales 1000 --kernel-scales 10000 \
		--out /tmp/bench_quick.json
	$(PYTHON) -m repro bench --census --census-scales 20000 \
		--out /tmp/bench_census_quick.json
	$(PYTHON) -m repro bench --dispatch --dispatch-scales 20000 \
		--out /tmp/bench_dispatch_quick.json
	$(PYTHON) -m repro bench --serve --serve-scales 16 \
		--out /tmp/bench_serve_quick.json

# Reduced-scale event-kernel floor guard (the 10^6 < 60s claim,
# scaled): benchmarks/test_event_kernel_floor.py under --run-perf.
bench-floor:
	REPRO_FLOOR_SCALE=20000 $(PYTHON) -m pytest \
		benchmarks/test_event_kernel_floor.py -q --run-perf

# Traced smoke run + human summary of the resulting trace artifacts
# (see DESIGN.md §9 for the event taxonomy).
trace-demo:
	$(PYTHON) -m repro a3 --smoke --trace=all --out /tmp/trace_demo
	$(PYTHON) -m repro.telemetry.export /tmp/trace_demo/a3/trace.jsonl

# Fault-injection smoke: the fault_sweep scenario (availability/MTTR
# under scripted chaos) plus a stock scenario under the demo plan
# (see DESIGN.md §10 for the fault model).
faults-smoke:
	$(PYTHON) -m repro fault_sweep --smoke --jobs 2
	$(PYTHON) -m repro a3 --smoke --faults=demo

# Federated control plane smoke: the federation_sweep scenario through
# the parallel runner, the federation unit/fault suites, and a
# reduced-scale run of the multi-network perf floor (DESIGN.md §13).
federation-smoke:
	$(PYTHON) -m repro federation_sweep --smoke --jobs 2
	$(PYTHON) -m pytest tests/core/test_federation.py \
		tests/faults/test_shard_faults.py tests/core/test_provider.py -q
	REPRO_FLOOR_SCALE=20000 $(PYTHON) -m pytest \
		benchmarks/test_federation_floor.py -q --run-perf

# Sabotage-tolerance smoke: the sabotage_sweep scenario through the
# parallel runner plus the certification/adversary suites on BOTH
# task paths — cohort engine and the per-PNA process oracle
# (DESIGN.md §15).
certify-smoke:
	$(PYTHON) -m repro sabotage_sweep --smoke --jobs 2
	$(PYTHON) -m pytest tests/certify tests/faults/test_adversaries.py \
		tests/faults/test_plan.py tests/faults/test_signature_corruption.py -q
	REPRO_TASK_PATH=process $(PYTHON) -m pytest tests/certify \
		tests/faults/test_adversaries.py -q

# Vector-tier parity smoke: the columnar system/fault-mask/telemetry
# suites, the event-vs-vector agreement suite, the vector_scale
# scenario through the parallel runner, and the throughput floor at
# reduced scale (DESIGN.md §16).
vector-smoke:
	$(PYTHON) -m pytest tests/vector tests/faults/test_masks.py \
		tests/test_tier_agreement.py -q
	$(PYTHON) -m repro vector_scale --smoke --jobs 2
	REPRO_FLOOR_SCALE=100000 $(PYTHON) -m pytest \
		benchmarks/test_vector_floor.py -q --run-perf

# Request-driven service tier smoke: both serve scenarios through the
# parallel runner, the serve unit/fault suites, and the warm-pool perf
# floor at reduced scale (DESIGN.md §14).
serve-smoke:
	$(PYTHON) -m repro service_sweep --smoke --jobs 2
	$(PYTHON) -m repro flash_crowd --smoke --jobs 2
	$(PYTHON) -m pytest tests/serve tests/faults/test_serve_faults.py -q
	REPRO_FLOOR_SCALE=16 $(PYTHON) -m pytest \
		benchmarks/test_serve_floor.py -q --run-perf
