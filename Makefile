PYTHON ?= python
export PYTHONPATH := src

.PHONY: test experiments bench bench-quick

test:
	$(PYTHON) -m pytest -x -q

# Every registered scenario at smoke scale through the parallel runner
# (tier-2 'experiments' marker; excluded from the default test run).
experiments:
	$(PYTHON) -m pytest tests/experiments/test_smoke_all.py -q \
		--run-experiments

# Full event-tier perf harness: writes BENCH_event_tier.json.
# Wall numbers are machine-dependent — see DESIGN.md §8 for the
# interleaved before/after measurement protocol.
bench:
	$(PYTHON) -m repro bench

bench-quick:
	$(PYTHON) -m repro bench --scales 1000 --kernel-scales 10000 \
		--out /tmp/bench_quick.json
