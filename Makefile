PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick

test:
	$(PYTHON) -m pytest -x -q

# Full event-tier perf harness: writes BENCH_event_tier.json.
# Wall numbers are machine-dependent — see DESIGN.md §8 for the
# interleaved before/after measurement protocol.
bench:
	$(PYTHON) -m repro bench

bench-quick:
	$(PYTHON) -m repro bench --scales 1000 --kernel-scales 10000 \
		--out /tmp/bench_quick.json
