"""Full-scale perf scenarios (opt in: ``pytest benchmarks/ --run-perf``).

These take minutes at the larger scales, so they stay out of default
collection; the assertions pin the *semantic* outputs (the perf harness
must stay an equivalence check, not just a stopwatch).
"""

import pytest

from repro.perfbench import run_kernel_scenario, run_scenario

pytestmark = pytest.mark.perf

#: The scenario's makespan is scale-invariant (every node gets
#: tasks_per_node tasks) and must be bit-identical across builds.
EXPECTED_MAKESPAN = 29.29000533333334


@pytest.mark.parametrize("n_nodes", [1_000, 10_000])
def test_oddci_scenario_semantics(n_nodes):
    metrics = run_scenario(n_nodes)
    assert metrics["makespan"] == pytest.approx(EXPECTED_MAKESPAN, abs=1e-9)
    assert metrics["distinct_workers"] == n_nodes
    assert metrics["n_tasks"] == 4 * n_nodes
    assert metrics["events"] > 0


def test_kernel_scenario_event_count_is_deterministic():
    a = run_kernel_scenario(10_000)
    b = run_kernel_scenario(10_000)
    assert a["events"] == b["events"]
    assert a["events"] > 10_000 * 28  # ~29-30 ticks per timer
