"""Vector-tier scaling floor (PR: vector-tier parity).

The rebuilt vector tier's whole claim is constant-per-node cost at
10^5-10^8 nodes: two sequential submissions (one riding a 0.3 churn
storm) against a persistent population must clear
:data:`MIN_NODES_PER_SEC` recruited-nodes-per-second of run wall time.
Tracked points (``BENCH_vector.json`` at the repo root, refreshed by
``scripts/refresh_bench_vector.py``): ~1.4M nodes/s at 10^5, ~1.3M at
10^6, ~0.5M at 10^7 (and ~175k at the 10^8 smoke, below this floor —
the guard is calibrated for the 10^5-10^7 sweep range).

The semantic test is always-on (sim-time numbers, machine-independent);
the wall-clock floor is perf-marked::

    pytest benchmarks/test_vector_floor.py --run-perf
    REPRO_FLOOR_SCALE=100000 pytest benchmarks/... --run-perf   # CI
"""

import os

import pytest

from repro.perfbench import run_vector_scenario

FULL_SCALE = 1_000_000
#: Measured ~1.3M nodes/s at the tracked 10^6 point; generous margin
#: for slower hosts, still tight enough to catch an O(n log n) or
#: per-node-Python regression (those land 10-100x below).
MIN_NODES_PER_SEC = 250_000


def _assert_semantics(metrics):
    assert metrics["recruited"] >= 1.9 * metrics["nodes"]  # two jobs
    assert metrics["makespan_1"] > 0 and metrics["makespan_2"] > 0
    # Job 1 rides the storm: it must cost availability relative to the
    # clean second submission on the same population.  (Makespans are
    # not ordered — recruitment quantization can hand job 2 a higher
    # tasks-per-node ceiling than the storm costs job 1.)
    assert metrics["availability_1"] < metrics["availability_2"], metrics
    assert 0.0 < metrics["efficiency_1"] <= 1.0
    assert metrics["sim_time"] > 0


def test_vector_scenario_semantics_at_smoke_scale():
    """Always-on: the storm/clean submission pair behaves at 10^5."""
    _assert_semantics(run_vector_scenario(100_000))


@pytest.mark.perf
def test_vector_scale_holds_throughput_floor():
    scale = int(os.environ.get("REPRO_FLOOR_SCALE", FULL_SCALE))
    metrics = run_vector_scenario(scale)
    if scale == FULL_SCALE:
        _assert_semantics(metrics)
    assert metrics["nodes_per_sec"] >= MIN_NODES_PER_SEC, (
        f"vector floor broken: {metrics['nodes_per_sec']:.0f} nodes/s "
        f"at {scale} nodes (floor {MIN_NODES_PER_SEC}): {metrics}")
