"""Bench T3 — regenerates Table III (BLASTCL3 remote; reconstructed).

Paper expectation: with processing server-side, the STB/PC gap nearly
vanishes (ratios near 1 instead of ~20).
"""

from repro.experiments import render_table3, run_table3


def test_table3_blastcl3(benchmark, save_artifact):
    records = benchmark(run_table3, seed=0)
    assert len(records) == 3
    for r in records:
        assert 0.8 < r["in_use_over_pc"] < 1.5
    save_artifact("table3_blastcl3", render_table3(records))
