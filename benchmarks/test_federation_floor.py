"""Federated control plane wall-clock floor (PR: federation).

One full wakeup+heartbeat+bag-of-tasks cycle on a 3-network federation
at 10^5 total PNAs must complete in under 15 seconds of wall time — the
multi-router task fabric, per-shard census and placement matcher may
not cost more than ~5x headroom over the measured ~3s (the tracked
number lives in ``BENCH_federation.json`` at the repo root).

Wall-clock guards are machine-dependent, so this is perf-marked::

    pytest benchmarks/test_federation_floor.py --run-perf
    REPRO_FLOOR_SCALE=20000 pytest benchmarks/... --run-perf   # CI

The semantic assertions (bag fully executed across every network,
whole fleet recruited, scale-invariant makespan equal to the
single-network golden) run whenever the perf run does, plus in the
always-on structural test at small scale — a "fast" federation that
drops tasks or starves a network cannot pass.
"""

import os

import pytest

from repro.perfbench import SCENARIO, run_federation_scenario

FULL_SCALE = 100_000
FULL_BUDGET_S = 15.0
#: Fixed-cost allowance for reduced-scale runs: interpreter start-up,
#: image broadcast and job build don't shrink with the fleet.
MIN_BUDGET_S = 5.0
#: The uniform-bag cycle's timetable is fleet-size invariant and must
#: match the single-network event tier (see test_event_kernel_floor).
GOLDEN_MAKESPAN = 29.29


def _assert_semantics(metrics, scale):
    assert metrics["n_tasks"] == scale * SCENARIO["tasks_per_node"]
    assert metrics["distinct_workers"] == scale
    assert metrics["makespan"] == pytest.approx(GOLDEN_MAKESPAN, abs=0.01)
    split = metrics["completed_by_network"]
    assert len(split) == metrics["n_networks"] == 3
    assert sum(split.values()) == metrics["n_tasks"]
    # Spread placement at equal capacity: every network pulls its share.
    assert min(split.values()) > metrics["n_tasks"] // 4


def test_federation_scenario_is_an_equivalence_check():
    """Small scale, always-on: merged multi-router accounting must match
    the bag exactly, so a green run is a correctness statement."""
    metrics = run_federation_scenario(3_000)
    _assert_semantics(metrics, 3_000)


@pytest.mark.perf
def test_federated_cycle_holds_wall_clock_floor():
    scale = int(os.environ.get("REPRO_FLOOR_SCALE", FULL_SCALE))
    budget = max(MIN_BUDGET_S, FULL_BUDGET_S * scale / FULL_SCALE)
    metrics = run_federation_scenario(scale, task_path="cohort")
    _assert_semantics(metrics, scale)
    assert metrics["wall_s"] < budget, (
        f"federation floor broken: {metrics['wall_s']:.2f}s for "
        f"{scale} nodes (budget {budget:.1f}s): {metrics}")
