"""Thin wrapper around :mod:`repro.perfbench` (kept at the historical
path so ``python benchmarks/perf_bench.py`` keeps working).

The harness itself lives in ``src/repro/perfbench.py``; run it via::

    python -m repro bench            # or: make bench

Full-scale pytest runs are in ``test_perf_scenarios.py`` behind the
``perf`` marker (opt in with ``--run-perf``); the tier-1 smoke test is
``tests/test_perf_bench_smoke.py``.
"""

from repro.perfbench import (  # noqa: F401  (re-exported API)
    DEFAULT_SCALES,
    KERNEL_SCALES,
    SCENARIO,
    main,
    run_kernel_scenario,
    run_scales,
    run_scenario,
    write_report,
)

if __name__ == "__main__":
    raise SystemExit(main())
