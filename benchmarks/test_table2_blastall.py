"""Bench T2 — regenerates Table II (BLASTALL: STB vs PC).

Paper expectation: STB-in-use ≈ 20.6× the PC (max error ≤ 10% @ 90%),
in-use ≈ 1.65× standby (≤ 17%), largest workload ≈ 11 h on the in-use
STB.  Our mini-BLAST provides the genuine per-query work; the device
profiles provide the calibrated ratios.
"""

import pytest

from repro.experiments import render_table2, run_table2, summarize_table2


def test_table2_blastall(benchmark, save_artifact):
    records = benchmark.pedantic(run_table2, kwargs={'seed': 0}, rounds=1, iterations=1)
    summary = summarize_table2(records)
    assert summary["stb_in_use_over_pc_mean"] == pytest.approx(20.6,
                                                               rel=0.10)
    assert summary["stb_in_use_over_pc_max_error"] < 0.10
    assert summary["in_use_over_standby_mean"] == pytest.approx(1.65,
                                                                rel=0.10)
    assert 8 * 3600 < summary["largest_in_use_s"] < 15 * 3600
    save_artifact("table2_blastall", render_table2(records))
