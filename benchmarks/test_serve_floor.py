"""Request-tier warm-pool floor (PR: service tier).

The warm-standby pool exists to buy time-to-ready: at the tracked
operating point (32 PNAs, offered load just below the fleet's knee —
see ``BENCH_serve.json`` at the repo root) the warm run's p99
time-to-ready must be **measurably** below the cold-start run's — the
guard requires at least :data:`MIN_P99_IMPROVEMENT` — and warm standby
may never make admission *worse* (warm rejection rate <= cold).  The
scenario itself refuses to score a run that strands requests
(``lost != 0`` asserts inside :func:`~repro.perfbench.
run_serve_scenario`), so a green guard is also a liveness statement.

The semantic test is always-on (sim-time numbers, machine-independent);
the wall-clock ceiling is perf-marked::

    pytest benchmarks/test_serve_floor.py --run-perf
    REPRO_FLOOR_SCALE=16 pytest benchmarks/... --run-perf   # CI
"""

import os

import pytest

from repro.perfbench import run_serve_scenario

FULL_SCALE = 32
FULL_BUDGET_S = 5.0
#: Fixed-cost allowance for reduced-scale runs.
MIN_BUDGET_S = 2.0
#: Cold p99 over warm p99 at the tracked operating point (measured
#: ~2.4x; generous margin for seed- and scale-sensitivity).
MIN_P99_IMPROVEMENT = 1.2


def _assert_semantics(metrics):
    assert metrics["issued"] > 0
    # The point of the pool: warm standby must buy p99 time-to-ready.
    assert metrics["p99_improvement"] >= MIN_P99_IMPROVEMENT, (
        f"warm pool bought no latency: cold p99 "
        f"{metrics['cold_ttr_p99_s']}s vs warm p99 "
        f"{metrics['warm_ttr_p99_s']}s: {metrics}")
    assert metrics["warm_ttr_p99_s"] < metrics["cold_ttr_p99_s"]
    # ...and it must not pay for it with extra rejections.
    assert (metrics["warm_rejection_rate"]
            <= metrics["cold_rejection_rate"]), metrics
    assert metrics["pool_hit_ratio"] > 0.0


def test_serve_scenario_shows_warm_pool_benefit():
    """Always-on: sim-time SLO deltas are machine-independent."""
    _assert_semantics(run_serve_scenario(FULL_SCALE))


@pytest.mark.perf
def test_serve_cycle_holds_wall_clock_floor():
    scale = int(os.environ.get("REPRO_FLOOR_SCALE", FULL_SCALE))
    budget = max(MIN_BUDGET_S, FULL_BUDGET_S * scale / FULL_SCALE)
    metrics = run_serve_scenario(scale)
    if scale == FULL_SCALE:
        _assert_semantics(metrics)
    assert metrics["wall_s"] < budget, (
        f"serve floor broken: {metrics['wall_s']:.2f}s for "
        f"{scale} PNAs (budget {budget:.1f}s): {metrics}")
