"""Bench W — regenerates the Section 5.1 wakeup-overhead study.

Paper expectation: W = 1.5·I/β; ≈ 100 s for an 8 MB image at 1 Mbps,
independent of fleet size.  Analytic, vector (10⁵ receivers) and event
tiers agree.
"""

import pytest

from repro.experiments import render_wakeup, run_wakeup_sweep


def test_wakeup_overhead(benchmark, save_artifact):
    records = benchmark.pedantic(
        run_wakeup_sweep,
        kwargs={'vector_nodes': 100_000, 'event_readers': 30, 'seed': 0},
        rounds=1, iterations=1)
    for r in records:
        assert r["analytic_s"] <= r["vector_s"] < 1.35 * r["analytic_s"]
        assert r["event_s"] == pytest.approx(r["vector_s"], rel=0.2)
    headline = next(r for r in records
                    if r["image_mb"] == 8 and r["beta_mbps"] == 1.0)
    assert 90 < headline["vector_s"] < 140
    save_artifact("wakeup_overhead", render_wakeup(records))
