"""The macro-PNA event kernel's wall-clock floor.

The cohort task path's headline claim (DESIGN.md §12): one full
wakeup+heartbeat+bag-of-tasks cycle at 10^6 PNAs completes in under
60 seconds of wall time.  This guard re-runs that scenario and holds
the line — scaled linearly when ``REPRO_FLOOR_SCALE`` trims the fleet
(CI runs at reduced scale; the tracked 10^6 number lives in
``BENCH_event_tier.json``).

Wall-clock guards are machine-dependent, so this is perf-marked::

    pytest benchmarks/test_event_kernel_floor.py --run-perf
    REPRO_FLOOR_SCALE=20000 pytest benchmarks/... --run-perf   # CI

The semantic assertions (bag fully executed, whole fleet recruited,
scale-invariant makespan) run whenever the perf run does, so a "fast"
build that drops work cannot pass.
"""

import os

import pytest

from repro.perfbench import SCENARIO, run_scenario

FULL_SCALE = 1_000_000
FULL_BUDGET_S = 60.0
#: Fixed-cost allowance for reduced-scale runs: interpreter start-up,
#: image broadcast and job build don't shrink with the fleet.
MIN_BUDGET_S = 10.0


@pytest.mark.perf
def test_cohort_event_tier_holds_wall_clock_floor():
    scale = int(os.environ.get("REPRO_FLOOR_SCALE", FULL_SCALE))
    budget = max(MIN_BUDGET_S, FULL_BUDGET_S * scale / FULL_SCALE)
    metrics = run_scenario(scale, task_path="cohort")
    # The run must be the real workload, not a degenerate fast one.
    assert metrics["n_tasks"] == scale * SCENARIO["tasks_per_node"]
    assert metrics["distinct_workers"] == scale
    # Uniform bags complete on a timetable independent of fleet size
    # (4 tasks/node everywhere); the golden makespan pins semantics.
    assert metrics["makespan"] == pytest.approx(29.29, abs=0.01)
    assert metrics["wall_s"] < budget, (
        f"event kernel floor broken: {metrics['wall_s']:.2f}s for "
        f"{scale} nodes (budget {budget:.1f}s): {metrics}")
