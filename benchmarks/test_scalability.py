"""Bench S — requirement I: fleets from 10³ to 10⁶ receivers.

Paper expectation: the wakeup process (one broadcast) costs the same
regardless of fleet size; efficiency stays flat as N grows when n/N is
held constant.
"""

from repro.experiments import render_scalability, run_scalability


def test_scalability(benchmark, save_artifact):
    records = benchmark.pedantic(
        run_scalability,
        kwargs={'scales': (1_000, 10_000, 100_000, 1_000_000), 'seed': 0},
        rounds=1, iterations=1)
    ws = [r["wakeup_mean_s"] for r in records]
    assert max(ws) - min(ws) < 0.05 * max(ws)
    es = [r["efficiency"] for r in records]
    assert max(es) - min(es) < 0.15
    save_artifact("scalability", render_scalability(records))
