"""Census consolidation throughput guard (PR: columnar census engine).

The cohort fast path must consolidate a 10^5-member heartbeat round at
least 3x faster than the payload-by-payload baseline, and produce a
byte-identical census while doing it.  The structural test always runs
(small scale, asserts equivalence plumbing); the full-scale speedup
guard is perf-marked (``pytest benchmarks/ --run-perf``) so default
collection stays fast on loaded CI workers.
"""

import pytest

from repro.perfbench import CENSUS_SCALES, run_census_scenario

#: Floor enforced by the tracked BENCH_census.json artifact; the real
#: machine measurement (see repo root) lands well above this.
MIN_SPEEDUP = 3.0


def test_census_scenario_is_an_equivalence_check():
    """Small scale, always-on: the scenario itself asserts the dict and
    columnar engines consolidated identical censuses, so a green run is
    a correctness statement, not just a stopwatch."""
    metrics = run_census_scenario(2_000, rounds=2, repeats=1)
    assert metrics["n_members"] == 2_000
    assert metrics["instance_size"] == 1_800   # 90% busy members
    assert metrics["idle_estimate"] == 200     # 10% idle
    assert metrics["baseline_consolidations_per_sec"] > 0
    assert metrics["columnar_consolidations_per_sec"] > 0


@pytest.mark.perf
@pytest.mark.parametrize("n_members", list(CENSUS_SCALES))
def test_columnar_speedup_at_scale(n_members):
    metrics = run_census_scenario(n_members)
    assert metrics["speedup"] >= MIN_SPEEDUP, (
        f"columnar census fell to {metrics['speedup']:.2f}x at "
        f"n={n_members}; the tracked floor is {MIN_SPEEDUP}x")
