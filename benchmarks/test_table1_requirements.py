"""Bench T1 — regenerates Table I (requirements × technologies).

Paper expectation: each requirement is met by at least one incumbent,
but only OddCI meets all three.
"""

from repro.experiments import render_table1, run_table1


def test_table1_requirements(benchmark, save_artifact):
    result = benchmark(run_table1)
    matrix = result["matrix"]
    assert all(matrix["oddci"].values())
    assert not all(matrix["iaas"].values())
    assert not all(matrix["desktop-grid"].values())
    assert not all(matrix["voluntary-computing"].values())
    save_artifact("table1_requirements", render_table1(result))
