"""Benchmark-harness plumbing.

Every benchmark regenerates one paper artifact and saves its rendered
ASCII output under ``benchmarks/results/`` (also echoed to stdout; run
with ``-s`` to see it live).  ``pytest benchmarks/ --benchmark-only``
reproduces the full evaluation.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--run-perf", action="store_true", default=False,
        help="run full-scale perf scenarios (perf marker)")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-perf"):
        return
    skip = pytest.mark.skip(reason="perf scenario: pass --run-perf to run")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact(results_dir):
    """Persist (and print) a rendered experiment artifact."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
