"""Bench F6 — regenerates Figure 6 (efficiency vs Φ).

Paper expectation: efficiency rises with Φ and with n/N; n/N ≥ 100
yields very high efficiency for practical applications.  The vector
simulation (recruitment + carousel wakeup + pull execution) tracks
Equation 2.
"""

import pytest

from repro.experiments import render_fig6, run_fig6
from repro.experiments.fig6 import RATIOS


def test_fig6_efficiency(benchmark, save_artifact):
    records = benchmark.pedantic(
        run_fig6,
        kwargs={'sim_nodes': 200, 'sim_ratios': (10, 100), 'seed': 0},
        rounds=1, iterations=1)
    for ratio in RATIOS:
        es = [r["efficiency_analytic"] for r in records
              if r["ratio"] == ratio]
        assert es == sorted(es)
    assert all(r["efficiency_analytic"] > 0.9 for r in records
               if r["ratio"] >= 100 and r["phi"] >= 1000)
    for r in records:
        if "efficiency_sim" in r:
            assert r["efficiency_sim"] == pytest.approx(
                r["efficiency_analytic"], abs=0.12)
    save_artifact("fig6_efficiency", render_fig6(records))
