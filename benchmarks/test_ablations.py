"""Benches A1–A3 — the design-choice ablations from DESIGN.md §5."""

from repro.experiments import (
    render_ablation,
    run_carousel_composition,
    run_heartbeat_intervals,
    run_probability_policies,
)


def test_a1_carousel_composition(benchmark, save_artifact):
    records = benchmark.pedantic(run_carousel_composition,
        kwargs={'n_samples': 50_000, 'seed': 0}, rounds=1, iterations=1)
    ws = [r["w_wait_for_start_s"] for r in records]
    assert ws == sorted(ws)
    assert records[0]["w_over_ideal"] < 1.1      # image-dominated: paper model
    assert records[-1]["w_over_ideal"] > 1.5     # filler breaks the 1.5 factor
    save_artifact("ablation_a1_carousel_composition", render_ablation(
        records, "A1 — wakeup vs carousel composition "
                 "(wait_for_start vs block-level resume)"))


def test_a2_probability_policies(benchmark, save_artifact):
    records = benchmark.pedantic(run_probability_policies,
        kwargs={'population': 100_000, 'target': 10_000, 'seed': 0},
        rounds=1, iterations=1)
    by_name = {r["policy"]: r for r in records}
    assert by_name["fixed-1.0"]["overshoot"] > 5.0
    assert by_name["deficit-1.1"]["overshoot"] < 0.15
    save_artifact("ablation_a2_probability_policies", render_ablation(
        records, "A2 — recruitment accuracy of wakeup-probability "
                 "policies"))


def test_a3_heartbeat_intervals(benchmark, save_artifact):
    records = benchmark.pedantic(run_heartbeat_intervals,
        kwargs={'intervals_s': (5.0, 20.0, 60.0), 'seed': 0},
        rounds=1, iterations=1)
    assert all(r["recovered"] for r in records)
    recs = sorted(records, key=lambda r: r["heartbeat_interval_s"])
    assert recs[0]["recovery_s"] < recs[-1]["recovery_s"]
    assert recs[0]["heartbeats_per_min"] > recs[-1]["heartbeats_per_min"]
    save_artifact("ablation_a3_heartbeat_intervals", render_ablation(
        records, "A3 — heartbeat interval vs recomposition latency and "
                 "controller load"))


def test_a4_heartbeat_aggregation(benchmark, save_artifact):
    from repro.experiments import run_aggregation_ablation

    records = benchmark.pedantic(run_aggregation_ablation,
        kwargs={'n_pnas': 24, 'heartbeat_s': 5.0, 'aggregation_s': 20.0,
                'fanouts': (0, 2, 4, 8), 'horizon_s': 600.0, 'seed': 0},
        rounds=1, iterations=1)
    baseline = next(r for r in records if r["aggregators"] == 0)
    aggregated = [r for r in records if r["aggregators"] > 0]
    assert all(r["controller_msgs"] * 5 < baseline["controller_msgs"]
               for r in aggregated)
    assert all(r["census_correct"] for r in records)
    save_artifact("ablation_a4_heartbeat_aggregation", render_ablation(
        records, "A4 — controller load vs heartbeat-aggregation fan-out "
                 "(paper footnote 3 extension)"))


def test_a5_tail_replication(benchmark, save_artifact):
    from repro.experiments import run_replication_ablation

    records = benchmark.pedantic(run_replication_ablation,
        kwargs={'seed': 0}, rounds=1, iterations=1)
    base = next(r for r in records if not r["replicate_tail"])
    repl = next(r for r in records if r["replicate_tail"])
    assert repl["speedup_vs_base"] > 1.5
    save_artifact("ablation_a5_tail_replication", render_ablation(
        records, "A5 — straggler mitigation via speculative tail "
                 "replication"))


def test_a6_control_plane_comparison(benchmark, save_artifact):
    from repro.experiments import run_plane_comparison

    records = benchmark.pedantic(run_plane_comparison,
        kwargs={'image_mbs': (1.0, 4.0, 8.0), 'n_nodes': 8, 'seed': 0},
        rounds=1, iterations=1)
    for r in records:
        # generic plane: one-shot broadcast = I/beta, simultaneous
        assert r["generic_plane_s"] < r["w_model_s"]
        # carousel plane: phase-aligned listeners land close to the
        # generic plane, well under the 1.5 I/beta worst-average
        assert r["carousel_plane_s"] < 1.5 * r["w_model_s"]
        assert 0.9 < r["carousel_penalty"] < 1.6
    save_artifact("ablation_a6_control_planes", render_ablation(
        records, "A6 — generic one-shot broadcast (Sec. 3) vs DSM-CC "
                 "carousel (Sec. 4): time to a staged fleet"))
