"""Bench F7 — regenerates Figure 7 (makespan vs Φ, log-y).

Paper expectation: makespan grows with Φ (linearly once compute
dominates); high efficiency comes at a severe makespan penalty.
"""

import pytest

from repro.experiments import render_fig7, run_fig7
from repro.experiments.fig6 import RATIOS


def test_fig7_makespan(benchmark, save_artifact):
    records = benchmark.pedantic(
        run_fig7,
        kwargs={'sim_nodes': 200, 'sim_ratios': (10, 100), 'seed': 0},
        rounds=1, iterations=1)
    for ratio in RATIOS:
        ms = [r["makespan_analytic_s"] for r in records
              if r["ratio"] == ratio]
        assert ms == sorted(ms)
    # High-phi high-ratio corner: ~150 h (the trade-off).
    worst = max(r["makespan_analytic_s"] for r in records)
    assert worst > 24 * 3600
    for r in records:
        if "makespan_sim_s" in r:
            assert r["makespan_sim_s"] == pytest.approx(
                r["makespan_analytic_s"], rel=0.45)
    save_artifact("fig7_makespan", render_fig7(records))
