"""Telemetry's disabled fast path must stay (nearly) free.

The contract (DESIGN.md §9): with no tracer installed — or with one
whose ``kernel`` category is disabled, the production shape of a
default ``--trace`` run — the kernel hot path pays one attribute load
plus one ``is None`` test per schedule call, and nothing per dispatch.
The guard interleaves plain and traced-but-disabled kernel microbench
runs and requires best-of-N throughput within 3%.

Wall-clock guards are noisy on shared hosts, so this is a perf-marked
scenario: ``pytest benchmarks/test_telemetry_overhead.py --run-perf``.
A structural (noise-free) zero-cost check runs unconditionally.
"""

import ast
from pathlib import Path

import pytest

from repro.perfbench import run_telemetry_overhead
from repro.sim.core import Simulator
from repro.telemetry.trace import Tracer, active


def test_disabled_tracer_leaves_kernel_state_none():
    """Structural guard: the disabled path compiles down to None checks.

    No tracer → no kernel channel, no dispatch hook wrapped around
    ``sim.trace`` — the run loop's existing ``trace is None`` test is
    the only per-event cost, exactly as before telemetry existed.
    """
    sim = Simulator(seed=1)
    assert sim._ktrace is None
    assert sim._kfast is None
    assert sim.trace is None
    with active(Tracer("control,pna")):  # kernel category disabled
        sim2 = Simulator(seed=1)
    assert sim2._ktrace is None
    assert sim2._kfast is None
    assert sim2.trace is None


# Modules on the simulation hot path: every trace emission in these
# files must be lexically nested under an ``is (not) None`` guard so
# that the disabled path never builds the event tuple / field dict.
HOT_MODULES = (
    "net/link.py",
    "net/broadcast.py",
    "core/pna.py",
    "core/backend.py",
    "core/network.py",
    "core/controller.py",
    "core/dve.py",
    "core/taskloop.py",
    "sim/core.py",
    "sim/wheel.py",
    "carousel/carousel.py",
    "faults/injector.py",
)


def _has_none_compare(test_node):
    return any(
        isinstance(node, ast.Compare)
        and any(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
        and any(isinstance(c, ast.Constant) and c.value is None
                for c in node.comparators)
        for node in ast.walk(test_node))


def test_hot_path_emit_sites_are_none_guarded():
    """Structural audit: ``.emit()`` in hot modules only runs behind a
    ``X is not None`` check.

    The field dict an emit call builds is the dominant disabled-path
    allocation; an unguarded site pays it on every event even with
    telemetry off.  This walks each hot module's AST and requires every
    emit call to have an ancestor ``if`` whose test compares against
    ``None`` — the `t = self._trace / if t is not None` idiom.
    """
    src_root = Path(__file__).resolve().parents[1] / "src" / "repro"
    offenders, total = [], 0
    for rel in HOT_MODULES:
        path = src_root / rel
        tree = ast.parse(path.read_text(), filename=str(path))
        parents = {child: parent for parent in ast.walk(tree)
                   for child in ast.iter_child_nodes(parent)}
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"):
                continue
            total += 1
            cur, guarded = node, False
            while cur in parents:
                cur = parents[cur]
                if isinstance(cur, ast.If) and _has_none_compare(cur.test):
                    guarded = True
                    break
            if not guarded:
                offenders.append(f"{rel}:{node.lineno}")
    assert total >= 20, "AST scan found too few emit sites; wrong paths?"
    assert not offenders, (
        "unguarded .emit() on the hot path (allocates with telemetry "
        f"disabled): {offenders}")


@pytest.mark.perf
def test_disabled_tracer_overhead_within_3_percent():
    metrics = run_telemetry_overhead(10_000, repeats=3)
    assert metrics["plain_events_per_sec"] > 0
    # traced/plain throughput ratio; 0.97 == <= ~3% regression.
    assert metrics["ratio"] >= 0.97, (
        f"disabled-telemetry overhead too high: {metrics}")
