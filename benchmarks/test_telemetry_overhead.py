"""Telemetry's disabled fast path must stay (nearly) free.

The contract (DESIGN.md §9): with no tracer installed — or with one
whose ``kernel`` category is disabled, the production shape of a
default ``--trace`` run — the kernel hot path pays one attribute load
plus one ``is None`` test per schedule call, and nothing per dispatch.
The guard interleaves plain and traced-but-disabled kernel microbench
runs and requires best-of-N throughput within 3%.

Wall-clock guards are noisy on shared hosts, so this is a perf-marked
scenario: ``pytest benchmarks/test_telemetry_overhead.py --run-perf``.
A structural (noise-free) zero-cost check runs unconditionally.
"""

import pytest

from repro.perfbench import run_telemetry_overhead
from repro.sim.core import Simulator
from repro.telemetry.trace import Tracer, active


def test_disabled_tracer_leaves_kernel_state_none():
    """Structural guard: the disabled path compiles down to None checks.

    No tracer → no kernel channel, no dispatch hook wrapped around
    ``sim.trace`` — the run loop's existing ``trace is None`` test is
    the only per-event cost, exactly as before telemetry existed.
    """
    sim = Simulator(seed=1)
    assert sim._ktrace is None
    assert sim._kfast is None
    assert sim.trace is None
    with active(Tracer("control,pna")):  # kernel category disabled
        sim2 = Simulator(seed=1)
    assert sim2._ktrace is None
    assert sim2._kfast is None
    assert sim2.trace is None


@pytest.mark.perf
def test_disabled_tracer_overhead_within_3_percent():
    metrics = run_telemetry_overhead(10_000, repeats=3)
    assert metrics["plain_events_per_sec"] > 0
    # traced/plain throughput ratio; 0.97 == <= ~3% regression.
    assert metrics["ratio"] >= 0.97, (
        f"disabled-telemetry overhead too high: {metrics}")
