"""Bench E — event-tier end-to-end runs (kernel throughput).

Not a paper artifact: measures the faithful per-message simulator
itself — a full OddCI-DTV job cycle and a generic-plane job cycle — so
regressions in the protocol stack show up as benchmark deltas.
"""

from repro.core import OddCISystem
from repro.dtv_oddci import OddCIDTVSystem
from repro.net.message import MEGABYTE, bits_from_bytes
from repro.workloads import uniform_bag


def run_generic_cycle(n_pnas: int = 20, n_tasks: int = 100) -> float:
    system = OddCISystem(seed=1, maintenance_interval_s=60.0)
    system.add_pnas(n_pnas, heartbeat_interval_s=30.0,
                    dve_poll_interval_s=10.0)
    job = uniform_bag(n_tasks, image_bits=MEGABYTE, input_bits=4096,
                      ref_seconds=5.0, result_bits=4096)
    submission = system.provider.submit_job(job, target_size=n_pnas)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    return report.makespan


def run_dtv_cycle(n_receivers: int = 8, n_tasks: int = 24) -> float:
    system = OddCIDTVSystem(seed=1, maintenance_interval_s=120.0,
                            pna_xlet_bits=bits_from_bytes(64 * 1024))
    system.add_receivers(n_receivers, heartbeat_interval_s=60.0,
                         dve_poll_interval_s=10.0)
    system.sim.run(until=30.0)
    job = uniform_bag(n_tasks, image_bits=MEGABYTE, ref_seconds=2.0)
    submission = system.provider.submit_job(job, target_size=n_receivers,
                                            heartbeat_interval_s=60.0)
    report = system.provider.run_job_to_completion(submission, limit_s=1e7)
    return report.makespan


def test_event_tier_generic_cycle(benchmark):
    makespan = benchmark(run_generic_cycle)
    assert makespan > 0


def test_event_tier_dtv_cycle(benchmark):
    makespan = benchmark(run_dtv_cycle)
    assert makespan > 0
