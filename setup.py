"""Legacy installer shim.

All project metadata lives in ``pyproject.toml``; this file exists so
environments without the ``wheel`` package (which PEP 660 editable
installs require) can still do::

    pip install -e . --no-use-pep517

or ``python setup.py develop``.
"""

from setuptools import setup

setup()
